(* The whole-program lint pass: surfaces the STI-weakening constructs the
   paper only tabulates (cast-driven equivalence-class growth, xpac
   laundering at external boundaries, CE/FE-needing double-pointer sites,
   static substitution windows) as actionable diagnostics with
   DILocations. Runs after Sti.Analysis on the same IR + debug metadata. *)

module Ir = Rsti_ir.Ir
module Ctype = Rsti_minic.Ctype
module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type

let type_str ty = Ctype.to_string (Ctype.strip_all_quals ty)

let loc_of (ins : Ir.instr) fallback_fn =
  match ins.dbg with
  | Some d -> (d.Rsti_ir.Dinfo.dl_func, d.dl_line)
  | None -> (fallback_fn, 0)

(* --------------------------- rule 1: casts --------------------------- *)

(* Type-erasing / class-merging pointer casts, with the ECV/ECT growth
   they cause: the merged STC class's type count and the number of
   pointer variables it spans (the substitution surface under STC). *)
let cast_findings anal (m : Ir.modul) =
  let vars = Analysis.pointer_vars anal in
  let class_vars cls =
    List.length
      (List.filter (fun (si : Analysis.slot_info) -> List.mem (type_str si.sty) cls) vars)
  in
  let out = ref [] in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Bitcast { from_ty; to_ty; _ }
            when Ctype.is_pointer from_ty && Ctype.is_pointer to_ty
                 && type_str from_ty <> type_str to_ty ->
              let fs = type_str from_ty and ts = type_str to_ty in
              let cls = Analysis.type_class_names anal fs in
              let nvars = class_vars cls in
              let func, line = loc_of ins fn.name in
              let universal =
                match Ctype.strip_all_quals to_ty with
                | Ctype.Ptr Ctype.Void | Ctype.Ptr (Ctype.Ptr Ctype.Void)
                | Ctype.Ptr Ctype.Char ->
                    true
                | _ -> false
              in
              out :=
                {
                  Finding.kind =
                    Finding.Type_erasing_cast
                      {
                        from_ty = fs;
                        to_ty = ts;
                        class_types = List.length cls;
                        class_vars = nvars;
                      };
                  severity = (if universal then Finding.Warning else Finding.Info);
                  func;
                  line;
                  message =
                    Printf.sprintf
                      "cast %s -> %s merges STC equivalence classes: class now \
                       {%s} (ECT %d) spanning %d pointer variables"
                      fs ts (String.concat "," cls) (List.length cls) nvars;
                  consequence =
                    "under STC every member type shares one modifier, so a \
                     validly signed pointer of any class member substitutes \
                     undetected (Table 2, cast-merged replay); STWC/STL \
                     re-sign here instead";
                }
                :: !out
          | _ -> ())
        fn)
    m.m_funcs;
  !out

(* ------------------------ rule 2: const stores ----------------------- *)

(* Stores through const-qualified slots. Initializing stores are not
   violations: the synthetic global initializer, and the first store a
   declaration/parameter-spill emits to its own alloca. *)
let const_store_findings anal (m : Ir.modul) =
  let out = ref [] in
  List.iter
    (fun (fn : Ir.func) ->
      if fn.Ir.name <> Ir.global_init_name then begin
        let alloca_of = Hashtbl.create 16 in
        let initialized = Hashtbl.create 16 in
        Ir.iter_instrs
          (fun ins ->
            match ins.i with
            | Ir.Alloca { dst; dv = Some dv; _ } ->
                Hashtbl.replace alloca_of dst dv.Rsti_ir.Dinfo.dv_id
            | Ir.Store { addr; slot; _ } -> (
                let is_init =
                  match (addr, slot) with
                  | Ir.Reg r, Ir.Svar id -> (
                      match Hashtbl.find_opt alloca_of r with
                      | Some aid when aid = id && not (Hashtbl.mem initialized id) ->
                          Hashtbl.replace initialized id ();
                          true
                      | _ -> false)
                  | _ -> false
                in
                match Analysis.slot_info anal slot with
                | si when si.read_only && not is_init ->
                    let func, line = loc_of ins fn.name in
                    out :=
                      {
                        Finding.kind = Finding.Const_store { slot = Ir.slot_to_string slot };
                        severity = Finding.Error;
                        func;
                        line;
                        message =
                          Printf.sprintf
                            "store through const-qualified slot %s (permission R)"
                            (Ir.slot_to_string slot);
                        consequence =
                          "the RSTI-type carries permission R, so the sign at \
                           this store and the auth at R loads disagree: every \
                           mechanism traps here at runtime — fix the source";
                      }
                      :: !out
                | _ -> ())
            | _ -> ())
          fn
      end)
    m.m_funcs;
  !out

(* --------------------- rule 3: double-pointer loss ------------------- *)

let pp_findings anal =
  let census = Analysis.pp_census anal in
  let ce_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (ty, ce, _) -> Hashtbl.replace tbl (type_str ty) ce)
      (Analysis.ce_table anal);
    fun tstr -> Hashtbl.find_opt tbl tstr
  in
  List.map
    (fun (func, ty) ->
      let tstr = type_str ty in
      let ce = ce_of tstr in
      {
        Finding.kind = Finding.Pp_type_loss { from_ty = tstr; ce };
        severity = (match ce with Some _ -> Finding.Warning | None -> Finding.Error);
        func;
        line = 0;
        message =
          Printf.sprintf
            "double pointer %s cast to a universal type and passed on: the \
             pointee's RSTI-type is lost at the callee%s"
            tstr
            (match ce with
            | Some ce -> Printf.sprintf " (CE/FE runtime covers it, CE=%d)" ce
            | None -> " and NO CE/FE entry covers this site");
        consequence =
          (match ce with
          | Some _ ->
              "inner loads/stores fall back to the pp runtime (§4.7.7): 3 \
               extra pp calls per pass-through, and protection narrows to \
               the 8-bit CE tag"
          | None ->
              "inner accesses through the callee's double pointer are signed \
               under the wrong (universal) RSTI-type: legitimate runs trap, \
               or the site is left uninstrumented and unprotected");
      })
    census.pp_special

(* ----------------------- rule 4: xpac laundering --------------------- *)

let xpac_findings (m : Ir.modul) =
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.m_funcs;
  let out = ref [] in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Call { callee = Ir.Direct f; arg_tys; _ }
            when not (Hashtbl.mem defined f) ->
              let ptr_args =
                List.length (List.filter Ctype.is_pointer arg_tys)
              in
              if ptr_args > 0 then begin
                let func, line = loc_of ins fn.name in
                out :=
                  {
                    Finding.kind = Finding.Xpac_launder { callee = f; ptr_args };
                    severity = Finding.Warning;
                    func;
                    line;
                    message =
                      Printf.sprintf
                        "external call %s(%d pointer arg%s): PACs are \
                         xpac-stripped at the boundary"
                        f ptr_args
                        (if ptr_args = 1 then "" else "s");
                    consequence =
                      "xpac strips without checking (§4.6): with FPAC off, a \
                       corrupted signed pointer passed here is laundered into \
                       a clean raw pointer instead of trapping — the library \
                       then uses the attacker's address";
                  }
                  :: !out
              end
          | _ -> ())
        fn)
    m.m_funcs;
  !out

(* -------------------- rule 5: substitution windows ------------------- *)

(* Slots sharing one RSTI-type under STWC/STC: Table 2's attacker window,
   reported statically. Under STL the location term separates them. *)
let substitution_findings anal =
  let vars = Analysis.pointer_vars anal in
  List.concat_map
    (fun mech ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (si : Analysis.slot_info) ->
          let rt = Analysis.rsti_of anal mech si.slot in
          let key = RT.to_string rt in
          let prev = try Hashtbl.find tbl key with Not_found -> [] in
          Hashtbl.replace tbl key (Ir.slot_to_string si.slot :: prev))
        vars;
      Hashtbl.fold
        (fun rsti members acc ->
          if List.length members < 2 then acc
          else
            let members = List.sort_uniq compare members in
            {
              Finding.kind = Finding.Substitution_window { mech; rsti; members };
              severity = (if mech = RT.Stc then Finding.Warning else Finding.Info);
              func = "";
              line = 0;
              message =
                Printf.sprintf
                  "%d slots share one RSTI-type under %s: %s all sign/auth \
                   with modifier of %s"
                  (List.length members)
                  (RT.mechanism_to_string mech)
                  (String.concat ", " members) rsti;
              consequence =
                "a validly signed pointer from any member slot authenticates \
                 in every other (same-RSTI-type replay, Table 2): only STL's \
                 location binding separates them";
            }
            :: acc)
        tbl []
      |> List.sort Finding.compare_finding)
    [ RT.Stwc; RT.Stc ]

(* ------------------------ rule 6: missing !dbg ----------------------- *)

let dbg_findings (m : Ir.modul) =
  let fnames = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace fnames f.Ir.name ()) m.m_funcs;
  let out = ref [] in
  List.iter
    (fun (fn : Ir.func) ->
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Load _ | Ir.Store _ -> (
              let problem =
                match ins.dbg with
                | None -> Some "carries no !dbg location"
                | Some d ->
                    if Hashtbl.mem fnames d.Rsti_ir.Dinfo.dl_func then None
                    else
                      Some
                        (Printf.sprintf "!dbg names unknown function %s"
                           d.Rsti_ir.Dinfo.dl_func)
              in
              match problem with
              | None -> ()
              | Some why ->
                  let func, line = loc_of ins fn.name in
                  out :=
                    {
                      Finding.kind =
                        Finding.Missing_dbg { instr = Ir.instr_to_string ins };
                      severity = Finding.Warning;
                      func;
                      line;
                      message =
                        Printf.sprintf "memory access %s" why;
                      consequence =
                        "Sti.Analysis keys scopes on the !dbg function: this \
                         access is attributed to the wrong scope, silently \
                         widening or splitting the slot's RSTI-type";
                    }
                    :: !out)
          | _ -> ())
        fn)
    m.m_funcs;
  !out

(* --------------------- rule 7: overflow windows ---------------------- *)

(* The linear-overflow attacker window made visible: a writable array
   laid out before pointer slots in the same globals segment or inside
   the same struct. This is the construct every Table-1 attack starts
   from — and exactly the layout that keeps {!Elide} from discharging
   the slots behind it. *)
let window_findings (m : Ir.modul) =
  let rec pointer_bearing ty =
    match Ctype.strip_all_quals ty with
    | Ctype.Ptr _ -> true
    | Ctype.Struct s ->
        List.exists (fun (_, fty) -> pointer_bearing fty) (Ir.struct_lookup m s)
    | Ctype.Array (e, _) -> pointer_bearing e
    | _ -> false
  in
  let finding ~opener ~victims ~line ~where =
    {
      Finding.kind = Finding.Overflow_window { opener; victims };
      severity = Finding.Warning;
      func = "";
      line;
      message =
        Printf.sprintf
          "writable array %s opens a linear-overflow window over %d pointer \
           slot%s %s: %s"
          opener (List.length victims)
          (if List.length victims = 1 then "" else "s")
          where
          (String.concat ", " victims);
      consequence =
        "a contiguous overflow running forward from the array rewrites the \
         signed pointers behind it (the Table-1 pattern): their auths are \
         the only thing standing, so none of them is elidable";
    }
  in
  (* Each pointer slot is attributed to its NEAREST preceding opener
     only: a window's victim list stops at the next opener (which is
     itself a victim when pointer-bearing — it lies behind the previous
     array — but everything past it belongs to the next window). Listing
     every trailing slot under every opener double-counted each victim
     once per opener before it. *)
  let victims_until_next_opener ~is_opener ~bearing ~name rest =
    let rec go acc = function
      | [] -> List.rev acc
      | v :: tl ->
          let acc = if bearing v then name v :: acc else acc in
          if is_opener v then List.rev acc else go acc tl
    in
    go [] rest
  in
  let global_windows =
    let opens (g : Ir.global_def) =
      Elide.opens_window m g.gvar.Rsti_minic.Tast.v_ty
    in
    let rec walk = function
      | [] -> []
      | (g : Ir.global_def) :: rest when opens g ->
          let victims =
            victims_until_next_opener ~is_opener:opens
              ~bearing:(fun (v : Ir.global_def) ->
                pointer_bearing v.gvar.Rsti_minic.Tast.v_ty)
              ~name:(fun (v : Ir.global_def) -> v.gvar.Rsti_minic.Tast.v_name)
              rest
          in
          if victims = [] then walk rest
          else
            finding ~opener:g.gvar.Rsti_minic.Tast.v_name ~victims
              ~line:g.gvar.Rsti_minic.Tast.v_loc.Rsti_minic.Loc.line
              ~where:"in the globals segment"
            :: walk rest
      | _ :: rest -> walk rest
    in
    walk m.m_globals
  in
  let struct_windows =
    List.concat_map
      (fun (sname, fields) ->
        let opens (_, fty) = Elide.opens_window m fty in
        let rec walk = function
          | [] -> []
          | (fname, fty) :: rest when Elide.opens_window m fty ->
              let victims =
                victims_until_next_opener ~is_opener:opens
                  ~bearing:(fun (_, fty) -> pointer_bearing fty)
                  ~name:(fun (fname, _) -> sname ^ "." ^ fname)
                  rest
              in
              if victims = [] then walk rest
              else
                finding
                  ~opener:(sname ^ "." ^ fname)
                  ~victims ~line:0
                  ~where:(Printf.sprintf "in every struct %s instance" sname)
                :: walk rest
          | _ :: rest -> walk rest
        in
        walk fields)
      m.m_structs
  in
  global_windows @ struct_windows

(* --------------------- rule 8: extern ingress ------------------------ *)

(* Raw pointers returned by external functions (malloc and friends,
   looked through casts) enter the signed domain at a store: the window
   between the return and the sign is unprotected, and every such heap
   pointer has same-typed substitution donors living on the heap — the
   Heap_value obligation of {!Elide}, reported at its source. *)
let ingress_findings (m : Ir.modul) =
  let defined = Hashtbl.create 16 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace defined f.Ir.name ()) m.m_funcs;
  let out = ref [] in
  List.iter
    (fun (fn : Ir.func) ->
      let defs = Hashtbl.create 64 in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Bitcast { dst; _ } | Ir.Call { dst = Some dst; _ } ->
              Hashtbl.replace defs dst ins.i
          | _ -> ())
        fn;
      let rec extern_origin v =
        match v with
        | Ir.Reg r -> (
            match Hashtbl.find_opt defs r with
            | Some (Ir.Bitcast { src; _ }) -> extern_origin src
            | Some (Ir.Call { callee = Ir.Direct f; _ })
              when not (Hashtbl.mem defined f) ->
                Some f
            | _ -> None)
        | _ -> None
      in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Store { slot; src; ty; _ } when Ctype.is_pointer ty -> (
              match extern_origin src with
              | Some callee ->
                  let func, line = loc_of ins fn.name in
                  out :=
                    {
                      Finding.kind =
                        Finding.Extern_ingress
                          { callee; slot = Ir.slot_to_string slot };
                      severity = Finding.Info;
                      func;
                      line;
                      message =
                        Printf.sprintf
                          "raw pointer returned by external %s enters the \
                           signed domain at this store to %s"
                          callee (Ir.slot_to_string slot);
                      consequence =
                        "the value is unprotected between the return and \
                         this sign (§4.6), and same-typed heap siblings make \
                         substitution donors: the slot's flow component must \
                         keep its checks (Elide's heap-value obligation)";
                    }
                    :: !out
              | None -> ())
          | _ -> ())
        fn)
    m.m_funcs;
  !out

(* ---------------------- rule 9: scope escapes ------------------------ *)

(* Stack slots whose address provably outlives the defining scope, from
   the dataflow layer's scope-escape analysis. The paper enforces scope
   at runtime (the location term dies with the frame); this rule reports
   statically where that enforcement is load-bearing. *)
let scope_findings (scope : Rsti_dataflow.Scope_escape.t) =
  List.map
    (fun (e : Rsti_dataflow.Scope_escape.escape) ->
      let sink = Rsti_dataflow.Scope_escape.sink_to_string e.sink in
      {
        Finding.kind =
          Finding.Scope_escape
            { local = e.local_name; decl_func = e.func; sink };
        severity = Finding.Warning;
        func = e.func;
        line = e.line;
        message =
          Printf.sprintf
            "address of local %s (frame of %s) may outlive its scope: %s"
            e.local_name e.func sink;
        consequence =
          "the slot's RSTI-type location term dies with the frame, so a \
           later auth through the escaped address traps on legitimate runs \
           under STL — and the frame slot it re-uses becomes a \
           substitution donor meanwhile";
      })
    (Rsti_dataflow.Scope_escape.escapes scope)

(* ------------------- rule 10: stale-frame derefs --------------------- *)

let stale_findings (scope : Rsti_dataflow.Scope_escape.t) =
  List.map
    (fun (s : Rsti_dataflow.Scope_escape.stale) ->
      {
        Finding.kind =
          Finding.Stale_frame_deref
            {
              local = s.local_name;
              decl_func = s.decl_func;
              use_func = s.use_func;
              must = s.must;
            };
        severity = (if s.must then Finding.Error else Finding.Warning);
        func = s.use_func;
        line = s.use_line;
        message =
          Printf.sprintf
            "%s dereferences a pointer that %s target local %s of %s, whose \
             frame has provably ended (%s is never an active caller of %s)"
            s.use_func
            (if s.must then "can only" else "may")
            s.local_name s.decl_func s.decl_func s.use_func;
        consequence =
          "the access touches a dead frame: whatever now occupies the slot \
           is read or clobbered, and under scope enforcement the stale \
           location term makes every auth here trap — fix the source";
      })
    (Rsti_dataflow.Scope_escape.stale_derefs scope)

(* The dataflow-derived findings alone — what `rstic analyze
   --format=sarif` reports without the full lint battery. *)
let dataflow_findings (scope : Rsti_dataflow.Scope_escape.t) : Finding.t list =
  scope_findings scope @ stale_findings scope
  |> List.sort_uniq (fun a b ->
         let c = Finding.compare_finding a b in
         if c <> 0 then c else compare a b)

(* ------------------------------ driver ------------------------------- *)

let run ?scope ?attack_surface anal (m : Ir.modul) : Finding.t list =
  cast_findings anal m
  @ const_store_findings anal m
  @ pp_findings anal
  @ xpac_findings m
  @ substitution_findings anal
  @ dbg_findings m
  @ window_findings m
  @ ingress_findings m
  @ (match scope with
    | None -> []
    | Some s -> scope_findings s @ stale_findings s)
  @ (match attack_surface with
    | None -> []
    | Some results -> Attack_surface.findings m results)
  |> List.sort_uniq (fun a b ->
         let c = Finding.compare_finding a b in
         if c <> 0 then c else compare a b)

let render_text ~file findings =
  match findings with
  | [] -> Printf.sprintf "%s: no findings\n" file
  | fs ->
      String.concat "\n" (List.map (Finding.to_text ~file) fs)
      ^ Printf.sprintf "\n%s: %d finding%s (%d error, %d warning, %d info)\n" file
          (List.length fs)
          (if List.length fs = 1 then "" else "s")
          (List.length (List.filter (fun f -> f.Finding.severity = Finding.Error) fs))
          (List.length (List.filter (fun f -> f.Finding.severity = Finding.Warning) fs))
          (List.length (List.filter (fun f -> f.Finding.severity = Finding.Info) fs))

let render_json ~file findings =
  Json.to_string (Finding.report_json ~file findings) ^ "\n"

(* ------------------------------ SARIF -------------------------------- *)

(* SARIF 2.1.0: one run, tool.driver "stilint", one reportingDescriptor
   per lint rule, one result per finding across every linted file. Level
   maps severity (error/warning/note); module-level findings (line 0 or
   empty function) omit the region, as the spec allows. *)
let sarif_rules =
  [
    ( "type-erasing-cast",
      "Pointer cast merges STC equivalence classes, widening the \
       substitution surface" );
    ( "const-store",
      "Store through a const-qualified slot: sign and auth permissions \
       disagree, every mechanism traps" );
    ( "pp-type-loss",
      "Double pointer cast to a universal type loses the pointee's \
       RSTI-type at the callee" );
    ( "xpac-launder",
      "External call strips PACs with xpac, laundering corrupted pointers \
       when FPAC is off" );
    ( "substitution-window",
      "Multiple slots share one RSTI-type, admitting undetected \
       same-type replay" );
    ( "missing-dbg",
      "Memory access with missing or dangling !dbg metadata is attributed \
       to the wrong scope" );
    ( "overflow-window",
      "Writable array laid out before pointer slots opens a \
       linear-overflow attacker window" );
    ( "extern-pointer-ingress",
      "Raw external pointer return enters the signed domain unprotected" );
    ( "scope-escape",
      "Address of a stack slot may outlive its defining scope, making the \
       runtime scope check load-bearing" );
    ( "stale-frame-deref",
      "Dereference of a pointer targeting a local whose frame has provably \
       ended" );
    ( "modifier-collision",
      "Instrumented slots share one PA (key, modifier) pair, admitting \
       undetected signed-pointer replay within the class" );
    ( "feasible-substitution",
      "A same-modifier replay the confined linear-overflow attacker can \
       execute: donor signed and live, victim storage attacker-writable" );
  ]

let sarif_level = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"
  | Finding.Info -> "note"

let sarif_result ~file (f : Finding.t) =
  let region =
    if f.Finding.line <= 0 then []
    else
      [
        ( "region",
          Json.Obj
            (("startLine", Json.Int f.Finding.line)
            ::
            (if f.Finding.func = "" then []
             else
               [
                 ( "message",
                   Json.Obj [ ("text", Json.Str ("in " ^ f.Finding.func)) ] );
               ])) );
      ]
  in
  Json.Obj
    [
      ("ruleId", Json.Str (Finding.kind_name f.Finding.kind));
      ("level", Json.Str (sarif_level f.Finding.severity));
      ( "message",
        Json.Obj
          [
            ( "text",
              Json.Str (f.Finding.message ^ " — " ^ f.Finding.consequence) );
          ] );
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    (("artifactLocation", Json.Obj [ ("uri", Json.Str file) ])
                    :: region) );
              ];
          ] );
    ]

let render_sarif (reports : (string * Finding.t list) list) =
  let rules =
    List.map
      (fun (id, desc) ->
        Json.Obj
          [
            ("id", Json.Str id);
            ("shortDescription", Json.Obj [ ("text", Json.Str desc) ]);
          ])
      sarif_rules
  in
  let results =
    List.concat_map
      (fun (file, findings) -> List.map (sarif_result ~file) findings)
      reports
  in
  Json.to_string
    (Json.Obj
       [
         ( "$schema",
           Json.Str
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
         );
         ("version", Json.Str "2.1.0");
         ( "runs",
           Json.List
             [
               Json.Obj
                 [
                   ( "tool",
                     Json.Obj
                       [
                         ( "driver",
                           Json.Obj
                             [
                               ("name", Json.Str "stilint");
                               ("rules", Json.List rules);
                             ] );
                       ] );
                   ("results", Json.List results);
                 ];
             ] );
       ])
  ^ "\n"

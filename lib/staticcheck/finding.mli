(** Structured findings emitted by the {!Lint} pass.

    A finding pins an STI-weakening construct to a [DILocation]
    (function + line) and states its per-mechanism consequence: which of
    the paper's attacker windows (Table 2) the construct opens or widens.
    The JSON shape is shared by [rstic lint --format=json] and
    [rstic analyze --format=json]. *)

type severity = Info | Warning | Error

type kind =
  | Type_erasing_cast of {
      from_ty : string;
      to_ty : string;
      class_types : int;  (** ECT after the merge: basic types in the
                              STC class this cast connects *)
      class_vars : int;   (** ECV after the merge: pointer variables the
                              class spans — the substitution surface *)
    }
      (** A pointer cast that merges STC equivalence classes (§4.8). *)
  | Const_store of { slot : string }
      (** A store through a [const]-qualified slot outside the global
          initializer — a permission violation the analysis sees
          statically. *)
  | Pp_type_loss of { from_ty : string; ce : int option }
      (** A double pointer cast to a universal type and passed onward:
          the pointee type is lost unless the CE/FE runtime covers the
          site ([ce = None] means it does not). *)
  | Xpac_launder of { callee : string; ptr_args : int }
      (** Pointer arguments to an external call are [xpac]-stripped
          (§4.6): with FPAC off, a corrupted PAC is laundered instead of
          trapping — the DESIGN.md §1 weakness. *)
  | Substitution_window of {
      mech : Rsti_sti.Rsti_type.mechanism;
      rsti : string;
      members : string list;
    }
      (** ≥ 2 slots share one RSTI-type under [mech]: the attacker can
          substitute validly signed pointers within the class undetected
          (Table 2's attacker window, reported statically). *)
  | Missing_dbg of { instr : string }
      (** A load/store without a [!dbg] location naming a module
          function: [Sti.Analysis] would silently mis-scope the slot. *)
  | Overflow_window of { opener : string; victims : string list }
      (** A writable array laid out before pointer slots in the same
          segment (or struct): the linear-overflow window every Table-1
          attack starts from. The pointers behind it are exactly the
          ones whose sign/auth pair must never be elided. *)
  | Extern_ingress of { callee : string; slot : string }
      (** A raw pointer returned by an external function enters the
          signed domain at this store (§4.6): the window between the
          return and the sign is unprotected, and every such heap
          pointer has same-typed substitution donors on the heap. *)
  | Scope_escape of { local : string; decl_func : string; sink : string }
      (** A stack slot's address provably outlives its defining scope
          (stored into longer-lived memory, returned, or passed to
          external code) — the static counterpart of the paper's runtime
          scope enforcement, from {!Rsti_dataflow.Scope_escape}. *)
  | Stale_frame_deref of {
      local : string;
      decl_func : string;
      use_func : string;
      must : bool;
    }
      (** A dereference in [use_func] of a pointer that may target a
          local of [decl_func] although [decl_func] cannot be an active
          caller — the frame has provably ended. [must] when every
          may-target is a dead frame (severity error); otherwise a
          may-warning. *)
  | Modifier_collision of {
      mech : Rsti_sti.Rsti_type.mechanism;
      modifier : string;
      members : string list;
      replay_edges : int;
    }
      (** ≥ 2 instrumented slots sign under the same PA (key, modifier)
          pair under [mech] — the exact runtime collision class from
          {!Rsti_dataflow.Equiv}, sharper than [Substitution_window]'s
          RSTI-type view because it is computed on the modifier the
          hardware actually checks (and so also covers PARTS).
          [replay_edges] counts the (donor, victim) replays the class
          admits under the paper's arbitrary-write attacker. *)
  | Feasible_substitution of {
      mech : Rsti_sti.Rsti_type.mechanism;
      donor : string;
      victim : string;
    }
      (** A replay the {e confined} linear-overflow attacker of
          {!Rsti_dataflow.Points_to.confinement} can actually execute:
          same-modifier pair, the donor is signed and live, and the
          victim's storage is backed by attacker-writable memory — a
          concrete substitution gadget, hence an error. *)

type t = {
  kind : kind;
  severity : severity;
  func : string;        (** enclosing function, [""] at module level *)
  line : int;           (** 0 when no source line applies *)
  message : string;
  consequence : string;
}

val severity_to_string : severity -> string

val kind_name : kind -> string
(** Stable kebab-case tag, e.g. ["type-erasing-cast"]. *)

val compare_finding : t -> t -> int
(** Deterministic order: (function, line, kind, message). *)

val to_text : ?file:string -> t -> string
(** Two-line human rendering: location/severity/message, then the
    consequence. *)

val to_json : ?file:string -> t -> Json.t

val report_json : ?file:string -> t list -> Json.t
(** The whole-file report object: findings plus a severity summary. *)

(* Attack-surface lint rules and gadget-graph rendering over
   Rsti_dataflow.Equiv. See attack_surface.mli. *)

module Ir = Rsti_ir.Ir
module Analysis = Rsti_sti.Analysis
module RT = Rsti_sti.Rsti_type
module Equiv = Rsti_dataflow.Equiv

let mechanisms = [ RT.Stwc; RT.Stc; RT.Stl; RT.Parts ]

let surface ?points_to ?scope anal m =
  List.map (Equiv.analyze ?points_to ?scope anal m) mechanisms

(* Slot display: prefer source names (globals from the module table,
   locals from their alloca's DIVariable) over the raw var#N form. *)
let slot_display (m : Ir.modul) =
  let names = Hashtbl.create 64 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace names
        ("v:" ^ string_of_int g.Ir.gvar.Rsti_minic.Tast.v_id)
        g.Ir.gvar.Rsti_minic.Tast.v_name)
    m.Ir.m_globals;
  List.iter
    (fun (fn : Ir.func) ->
      List.iter
        (fun (p : Rsti_minic.Tast.var) ->
          Hashtbl.replace names
            ("v:" ^ string_of_int p.Rsti_minic.Tast.v_id)
            (fn.Ir.name ^ "." ^ p.Rsti_minic.Tast.v_name))
        fn.Ir.params;
      Ir.iter_instrs
        (fun ins ->
          match ins.Ir.i with
          | Ir.Alloca { dv = Some dv; _ } ->
              Hashtbl.replace names
                ("v:" ^ string_of_int dv.Rsti_ir.Dinfo.dv_id)
                (fn.Ir.name ^ "." ^ dv.Rsti_ir.Dinfo.dv_name)
          | _ -> ())
        fn)
    m.Ir.m_funcs;
  fun (mb : Equiv.member) ->
    match Hashtbl.find_opt names mb.Equiv.mb_info.Analysis.key with
    | Some n -> n
    | None -> Ir.slot_to_string mb.Equiv.mb_info.Analysis.slot

let feasible_edges (c : Equiv.cls) =
  List.filter
    (fun ((_ : Equiv.member), v) ->
      v.Equiv.mb_writable
      && (v.Equiv.mb_reach = None || v.Equiv.mb_escapes))
    (Equiv.class_edges c)

let max_edge_findings = 16
let max_graph_edges = 64

let key_str k = Rsti_pa.Key.which_to_string k

let collision_finding display (r : Equiv.result) (c : Equiv.cls) :
    Finding.t option =
  if List.length c.Equiv.c_members < 2 then None
  else
    let members = List.map display c.Equiv.c_members in
    let edges = Equiv.class_edges c in
    let n_edges = List.length edges in
    Some
      {
        Finding.kind =
          Finding.Modifier_collision
            {
              mech = r.Equiv.r_mech;
              modifier = Printf.sprintf "0x%Lx" c.Equiv.c_modifier;
              members;
              replay_edges = n_edges;
            };
        severity = Finding.Warning;
        func = "";
        line = 0;
        message =
          Printf.sprintf
            "%d slots sign under one PA modifier (0x%Lx, key %s) under %s: %s \
             — %d replay edge%s for an arbitrary-write attacker"
            (List.length c.Equiv.c_members)
            c.Equiv.c_modifier (key_str c.Equiv.c_pa_key)
            (RT.mechanism_to_string r.Equiv.r_mech)
            (String.concat ", " members) n_edges
            (if n_edges = 1 then "" else "s");
        consequence =
          "a validly signed pointer harvested from any member authenticates \
           at any other: Table 2's substitution window, measured on the \
           modifier the hardware checks";
      }

let edge_findings display (r : Equiv.result) (c : Equiv.cls) : Finding.t list =
  let edges = feasible_edges c in
  let n = List.length edges in
  let shown = List.filteri (fun i _ -> i < max_edge_findings) edges in
  List.map
    (fun (d, v) ->
      let donor = display d and victim = display v in
      {
        Finding.kind =
          Finding.Feasible_substitution
            { mech = r.Equiv.r_mech; donor; victim };
        severity = Finding.Error;
        func = "";
        line = 0;
        message =
          Printf.sprintf
            "under %s a signed pointer harvested from %s authenticates at %s, \
             whose storage the linear-overflow attacker can reach%s"
            (RT.mechanism_to_string r.Equiv.r_mech)
            donor victim
            (if n > max_edge_findings then
               Printf.sprintf " (1 of %d feasible edges in this class)" n
             else "");
        consequence =
          "a concrete substitution gadget: the replay needs no key material \
           and survives this mechanism's modifier check";
      })
    shown

let findings (m : Ir.modul) (results : Equiv.result list) : Finding.t list =
  let display = slot_display m in
  List.concat_map
    (fun (r : Equiv.result) ->
      List.concat_map
        (fun c ->
          (match collision_finding display r c with
          | Some f -> [ f ]
          | None -> [])
          @ edge_findings display r c)
        r.Equiv.r_classes)
    results
  |> List.sort_uniq (fun a b ->
         let c = Finding.compare_finding a b in
         if c <> 0 then c else compare a b)

(* ------------------------- gadget graph JSON ------------------------- *)

let member_json display (mb : Equiv.member) =
  Json.Obj
    [
      ("slot", Json.Str (display mb));
      ("key", Json.Str mb.Equiv.mb_info.Analysis.key);
      ("signs", Json.Int mb.Equiv.mb_signs);
      ("auths", Json.Int mb.Equiv.mb_auths);
      ("writable", Json.Bool mb.Equiv.mb_writable);
      ("escapes", Json.Bool mb.Equiv.mb_escapes);
    ]

let class_json display (c : Equiv.cls) =
  let edges = Equiv.class_edges c in
  let feasible = feasible_edges c in
  let truncated = List.length edges > max_graph_edges in
  let edge_json (d, v) =
    Json.List [ Json.Str (display d); Json.Str (display v) ]
  in
  Json.Obj
    [
      ("modifier", Json.Str (Printf.sprintf "0x%Lx" c.Equiv.c_modifier));
      ("pa_key", Json.Str (key_str c.Equiv.c_pa_key));
      ("label", Json.Str c.Equiv.c_label);
      ("members", Json.List (List.map (member_json display) c.Equiv.c_members));
      ("replay_edge_count", Json.Int (List.length edges));
      ("feasible_edge_count", Json.Int (List.length feasible));
      ( "replay_edges",
        Json.List
          (List.map edge_json
             (List.filteri (fun i _ -> i < max_graph_edges) edges)) );
      ("edges_truncated", Json.Bool truncated);
    ]

let metrics_json (mt : Equiv.metrics) =
  Json.Obj
    [
      ("candidates", Json.Int mt.Equiv.m_candidates);
      ("classes", Json.Int mt.Equiv.m_classes);
      ("singletons", Json.Int mt.Equiv.m_singletons);
      ("largest_class", Json.Int mt.Equiv.m_largest);
      ( "class_size_hist",
        Json.List
          (List.map
             (fun (size, n) ->
               Json.Obj [ ("size", Json.Int size); ("classes", Json.Int n) ])
             mt.Equiv.m_hist) );
      ("replay_edges", Json.Int mt.Equiv.m_replay_edges);
      ("feasible_edges", Json.Int mt.Equiv.m_feasible_edges);
    ]

let graph_json (m : Ir.modul) (results : Equiv.result list) =
  let display = slot_display m in
  Json.Obj
    [
      ( "attack_surface",
        Json.List
          (List.map
             (fun (r : Equiv.result) ->
               Json.Obj
                 [
                   ( "mechanism",
                     Json.Str (RT.mechanism_to_string r.Equiv.r_mech) );
                   ("metrics", metrics_json r.Equiv.r_metrics);
                   ( "classes",
                     Json.List (List.map (class_json display) r.Equiv.r_classes)
                   );
                 ])
             results) );
    ]

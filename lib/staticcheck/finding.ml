(* Structured lint findings: what `rstic lint` reports. Each finding names
   the STI-weakening construct, where it is (the !dbg function/line the
   analysis will key scopes on), and the per-mechanism consequence — which
   attacker window (Table 2) the construct opens or widens. *)

type severity = Info | Warning | Error

type kind =
  | Type_erasing_cast of {
      from_ty : string;
      to_ty : string;
      class_types : int;   (* ECT: types in the merged STC class *)
      class_vars : int;    (* ECV: pointer variables the class now spans *)
    }
  | Const_store of { slot : string }
  | Pp_type_loss of { from_ty : string; ce : int option }
  | Xpac_launder of { callee : string; ptr_args : int }
  | Substitution_window of {
      mech : Rsti_sti.Rsti_type.mechanism;
      rsti : string;       (* the shared RSTI-type *)
      members : string list;
    }
  | Missing_dbg of { instr : string }
  | Overflow_window of {
      opener : string;     (* the writable array opening the window *)
      victims : string list;   (* pointer slots laid out behind it *)
    }
  | Extern_ingress of { callee : string; slot : string }
  | Scope_escape of {
      local : string;      (* the stack slot whose address escapes *)
      decl_func : string;  (* its defining function *)
      sink : string;       (* how it outlives the frame *)
    }
  | Stale_frame_deref of {
      local : string;
      decl_func : string;
      use_func : string;   (* where the dead-frame pointer is dereferenced *)
      must : bool;         (* every may-target is a dead frame *)
    }
  | Modifier_collision of {
      mech : Rsti_sti.Rsti_type.mechanism;
      modifier : string;   (* the shared PA modifier (hex) *)
      members : string list;
      replay_edges : int;  (* gadget edges under the paper's attacker *)
    }
  | Feasible_substitution of {
      mech : Rsti_sti.Rsti_type.mechanism;
      donor : string;      (* signed slot the attacker harvests *)
      victim : string;     (* same-modifier slot that authenticates it *)
    }

type t = {
  kind : kind;
  severity : severity;
  func : string;           (* enclosing function ("" = module level) *)
  line : int;              (* 0 when no source line applies *)
  message : string;
  consequence : string;    (* which enforcement window this weakens *)
}

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let kind_name = function
  | Type_erasing_cast _ -> "type-erasing-cast"
  | Const_store _ -> "const-store"
  | Pp_type_loss _ -> "pp-type-loss"
  | Xpac_launder _ -> "xpac-launder"
  | Substitution_window _ -> "substitution-window"
  | Missing_dbg _ -> "missing-dbg"
  | Overflow_window _ -> "overflow-window"
  | Extern_ingress _ -> "extern-pointer-ingress"
  | Scope_escape _ -> "scope-escape"
  | Stale_frame_deref _ -> "stale-frame-deref"
  | Modifier_collision _ -> "modifier-collision"
  | Feasible_substitution _ -> "feasible-substitution"

(* Deterministic report order: location first, then kind, then message
   (the qcheck determinism property compares whole sorted lists). *)
let compare_finding a b =
  compare
    (a.func, a.line, kind_name a.kind, a.message)
    (b.func, b.line, kind_name b.kind, b.message)

let to_text ?(file = "<module>") f =
  Printf.sprintf "%s:%s%d: [%s] %s: %s\n    -> %s" file
    (if f.func = "" then "" else f.func ^ ":")
    f.line
    (severity_to_string f.severity)
    (kind_name f.kind) f.message f.consequence

let kind_fields = function
  | Type_erasing_cast { from_ty; to_ty; class_types; class_vars } ->
      [
        ("from_type", Json.Str from_ty);
        ("to_type", Json.Str to_ty);
        ("merged_class_types", Json.Int class_types);
        ("merged_class_vars", Json.Int class_vars);
      ]
  | Const_store { slot } -> [ ("slot", Json.Str slot) ]
  | Pp_type_loss { from_ty; ce } ->
      [
        ("original_type", Json.Str from_ty);
        ("ce", match ce with Some c -> Json.Int c | None -> Json.Null);
      ]
  | Xpac_launder { callee; ptr_args } ->
      [ ("callee", Json.Str callee); ("pointer_args", Json.Int ptr_args) ]
  | Substitution_window { mech; rsti; members } ->
      [
        ("mechanism", Json.Str (Rsti_sti.Rsti_type.mechanism_to_string mech));
        ("rsti_type", Json.Str rsti);
        ("members", Json.List (List.map (fun m -> Json.Str m) members));
      ]
  | Missing_dbg { instr } -> [ ("instr", Json.Str instr) ]
  | Overflow_window { opener; victims } ->
      [
        ("opener", Json.Str opener);
        ("victims", Json.List (List.map (fun v -> Json.Str v) victims));
      ]
  | Extern_ingress { callee; slot } ->
      [ ("callee", Json.Str callee); ("slot", Json.Str slot) ]
  | Scope_escape { local; decl_func; sink } ->
      [
        ("local", Json.Str local);
        ("decl_function", Json.Str decl_func);
        ("sink", Json.Str sink);
      ]
  | Stale_frame_deref { local; decl_func; use_func; must } ->
      [
        ("local", Json.Str local);
        ("decl_function", Json.Str decl_func);
        ("use_function", Json.Str use_func);
        ("must", Json.Bool must);
      ]
  | Modifier_collision { mech; modifier; members; replay_edges } ->
      [
        ("mechanism", Json.Str (Rsti_sti.Rsti_type.mechanism_to_string mech));
        ("modifier", Json.Str modifier);
        ("members", Json.List (List.map (fun m -> Json.Str m) members));
        ("replay_edges", Json.Int replay_edges);
      ]
  | Feasible_substitution { mech; donor; victim } ->
      [
        ("mechanism", Json.Str (Rsti_sti.Rsti_type.mechanism_to_string mech));
        ("donor", Json.Str donor);
        ("victim", Json.Str victim);
      ]

let to_json ?(file = "<module>") f =
  Json.Obj
    ([
       ("kind", Json.Str (kind_name f.kind));
       ("severity", Json.Str (severity_to_string f.severity));
       ("file", Json.Str file);
       ("function", Json.Str f.func);
       ("line", Json.Int f.line);
       ("message", Json.Str f.message);
       ("consequence", Json.Str f.consequence);
     ]
    @ kind_fields f.kind)

let report_json ?(file = "<module>") findings =
  Json.Obj
    [
      ("file", Json.Str file);
      ("findings", Json.List (List.map (to_json ~file) findings));
      ( "summary",
        Json.Obj
          (List.map
             (fun sev ->
               ( severity_to_string sev,
                 Json.Int
                   (List.length (List.filter (fun f -> f.severity = sev) findings))
               ))
             [ Error; Warning; Info ]) );
    ]

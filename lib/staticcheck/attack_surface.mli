(** Lint/report frontend for the static substitution-attack-surface
    analysis ({!Rsti_dataflow.Equiv}): runs the partition for every
    mechanism, renders the gadget graph, and turns it into the two
    attack-surface lint rules —

    - [modifier-collision] (warning): an equivalence class of ≥ 2
      instrumented slots signing under one PA (key, modifier) pair, with
      the replay edges it admits under the paper's arbitrary-write
      attacker;
    - [feasible-substitution] (error): a concrete (donor, victim) replay
      the confined linear-overflow attacker can execute — the donor is
      signed and live, and the victim's storage is attacker-writable
      under {!Rsti_dataflow.Points_to.confinement}.

    Both rules are opt-in ([rstic lint --attack-surface],
    [rstic analyze --attack-surface]); the base lint battery is
    unchanged. *)

val mechanisms : Rsti_sti.Rsti_type.mechanism list
(** The mechanisms the surface is computed for:
    [STWC; STC; STL; PARTS]. *)

val surface :
  ?points_to:Rsti_dataflow.Points_to.t ->
  ?scope:Rsti_dataflow.Scope_escape.t ->
  Rsti_sti.Analysis.t ->
  Rsti_ir.Ir.modul ->
  Rsti_dataflow.Equiv.result list
(** One {!Rsti_dataflow.Equiv.analyze} result per mechanism, in
    {!mechanisms} order. *)

val feasible_edges :
  Rsti_dataflow.Equiv.cls ->
  (Rsti_dataflow.Equiv.member * Rsti_dataflow.Equiv.member) list
(** The class's replay edges the confined attacker can execute: victim
    storage writable, stack victims escaping. *)

val findings :
  Rsti_ir.Ir.modul -> Rsti_dataflow.Equiv.result list -> Finding.t list
(** The lint findings for a computed surface, sorted and deduplicated.
    At most {!max_edge_findings} [feasible-substitution] errors are
    enumerated per class (the class's [modifier-collision] finding
    always carries the full edge count); the module argument only
    supplies variable names for display. *)

val max_edge_findings : int
(** Per-class cap on enumerated [feasible-substitution] findings. *)

val graph_json :
  Rsti_ir.Ir.modul -> Rsti_dataflow.Equiv.result list -> Json.t
(** The substitution-gadget graph: per mechanism, every class with its
    members (sign/auth counts, writability, escape) and its replayable
    edges, plus the {!Rsti_dataflow.Equiv.metrics} — the
    [rstic analyze --attack-surface --format=json] payload. Edge lists
    are capped at {!max_graph_edges} per class with an explicit
    [edges_truncated] marker. *)

val max_graph_edges : int

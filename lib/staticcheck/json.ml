(* A minimal JSON value and printer: the findings serialization shared by
   `rstic lint --format=json` and `rstic analyze --format=json`. The repo
   deliberately has no JSON dependency; emitting (never parsing) is a
   page of code. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
      (* JSON has no NaN/Infinity; the stats code can produce both. *)
      if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.6g" x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

(* A minimal JSON value and printer: the findings serialization shared by
   `rstic lint --format=json` and `rstic analyze --format=json`. The repo
   deliberately has no JSON dependency; emitting (never parsing) is a
   page of code. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
      (* JSON has no NaN/Infinity; the stats code can produce both. *)
      if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.6g" x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

(* A strict recursive-descent parser over the same value type, added for
   the telemetry/SARIF outputs: tests and CI round-trip every emitted
   document through it. Numbers with a '.', exponent, or leading sign
   making them non-integral parse as [Float]; everything integral as
   [Int]. *)
exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u escape"
                 in
                 (* non-ASCII code points round-trip as UTF-8 *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
             | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

module Ir = Rsti_ir.Ir
module Dinfo = Rsti_ir.Dinfo
module Ctype = Rsti_minic.Ctype
module SS = Set.Make (String)

type slot_kind = Klocal | Kparam | Kglobal | Kfield of string | Kanon

type slot_info = {
  slot : Ir.slot;
  key : string;
  sty : Ctype.t;
  read_only : bool;
  kind : slot_kind;
  decl_func : string option;
  mutable occ : string list;
}

let type_str ty = Ctype.to_string (Ctype.strip_all_quals ty)

let slot_key = function
  | Ir.Svar id -> "v:" ^ string_of_int id
  | Ir.Sfield (s, f) -> "f:" ^ s ^ "." ^ f
  | Ir.Sanon ty -> "a:" ^ type_str ty

type t = {
  slots : (string, slot_info) Hashtbl.t;
  comp : Rsti_util.Uf.t;                  (* flow components over slot keys *)
  tclass : Rsti_util.Uf.t;                (* STC compatible-type classes *)
  mutable cast_list : (string * string * string) list;
  (* cast occurrences: component member key -> (func, target type) *)
  cast_occ : (string, string * string) Hashtbl.t;
  mutable all_types : SS.t;               (* basic pointer types present *)
  mutable pp_sites : int;
  mutable pp_special : (string * Ctype.t) list;
  (* locals whose address escapes (used other than as a load/store
     address): these cannot be register-promoted and stay instrumented *)
  addr_taken : (int, unit) Hashtbl.t;
  (* caches *)
  scope_cache : (string * string, SS.t) Hashtbl.t;
  mutable stc_types_present : SS.t;
}

let get_slot t (s : Ir.slot) ~sty ~read_only ~kind ~decl_func =
  let key = slot_key s in
  match Hashtbl.find_opt t.slots key with
  | Some si -> si
  | None ->
      let si = { slot = s; key; sty; read_only; kind; decl_func; occ = [] } in
      Hashtbl.replace t.slots key si;
      si

let anon_slot t ty =
  get_slot t (Ir.Sanon ty) ~sty:ty ~read_only:(Ctype.declared_read_only ty) ~kind:Kanon
    ~decl_func:None

let slot_info t (s : Ir.slot) =
  match Hashtbl.find_opt t.slots (slot_key s) with
  | Some si -> si
  | None -> (
      match s with
      | Ir.Sanon ty -> anon_slot t ty
      | _ -> invalid_arg ("Analysis.slot_info: unknown slot " ^ Ir.slot_to_string s))

let add_occ si f = if not (List.mem f si.occ) then si.occ <- f :: si.occ

(* ------------------------------------------------------------------ *)
(* Building the slot table                                             *)
(* ------------------------------------------------------------------ *)

let declare_variable t (dv : Dinfo.di_variable) =
  let kind =
    match dv.dv_scope with
    | Dinfo.Sc_global -> Kglobal
    | Dinfo.Sc_function _ -> if dv.dv_is_param then Kparam else Klocal
  in
  let decl_func =
    match dv.dv_scope with Dinfo.Sc_function f -> Some f | Dinfo.Sc_global -> None
  in
  let si =
    get_slot t (Ir.Svar dv.dv_id) ~sty:dv.dv_type
      ~read_only:(Ctype.declared_read_only dv.dv_type) ~kind ~decl_func
  in
  Option.iter (fun f -> add_occ si f) decl_func;
  si

let declare_field t sname fname fty =
  let si =
    get_slot t (Ir.Sfield (sname, fname)) ~sty:fty ~read_only:(Ctype.declared_read_only fty)
      ~kind:(Kfield sname) ~decl_func:None
  in
  si

(* ------------------------------------------------------------------ *)
(* Flow tracing                                                        *)
(* ------------------------------------------------------------------ *)

(* Map each register to its defining instruction (registers are assigned
   once, so the map is flow-insensitive). Parameters map to None. *)
let reg_defs (fn : Ir.func) =
  let defs = Hashtbl.create 64 in
  Ir.iter_instrs
    (fun ins ->
      match ins.i with
      | Ir.Alloca { dst; _ } | Ir.Load { dst; _ } | Ir.Gep { dst; _ }
      | Ir.Gepidx { dst; _ } | Ir.Bitcast { dst; _ }
      | Ir.Binop { dst; _ } | Ir.Neg { dst; _ } | Ir.Lognot { dst; _ }
      | Ir.Bitnot { dst; _ } | Ir.Cast_num { dst; _ } ->
          Hashtbl.replace defs dst ins.i
      | Ir.Call { dst = Some dst; _ } -> Hashtbl.replace defs dst ins.i
      | Ir.Call { dst = None; _ } -> ()
      | Ir.Pac p -> Hashtbl.replace defs p.p_dst ins.i
      | Ir.Pp (Ir.Pp_sign { dst; _ })
      | Ir.Pp (Ir.Pp_auth { dst; _ })
      | Ir.Pp (Ir.Pp_add_tbi { dst; _ }) ->
          Hashtbl.replace defs dst ins.i
      | Ir.Pp (Ir.Pp_add _) | Ir.Store _ -> ())
    fn;
  defs

(* Trace a value back to the slot (or return pseudo-slot) it was loaded
   from, looking through bitcasts. *)
let rec trace_source ?(defined = fun _ -> true) defs (v : Ir.value) : string option =
  match v with
  | Ir.Reg r -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Load { slot; _ }) -> Some (slot_key slot)
      | Some (Ir.Bitcast { src; _ }) -> trace_source ~defined defs src
      (* Returns of *defined* functions are flow nodes; extern returns
         (malloc above all) are fresh values, not flows — treating malloc
         as one node would merge every allocation site into a single
         component. *)
      | Some (Ir.Call { callee = Ir.Direct f; _ }) ->
          if defined f then Some ("ret:" ^ f) else None
      | _ -> None)
  | Ir.Imm _ | Ir.Fimm _ | Ir.Global _ | Ir.Funcaddr _ | Ir.Str _ | Ir.Null ->
      None

(* Is a value (looking through bitcasts) an argument position of any call
   in the function? Used for the pointer-to-pointer census. *)
let value_feeds_call (fn : Ir.func) (r : Ir.reg) =
  Ir.fold_instrs
    (fun acc ins ->
      acc
      ||
      match ins.i with
      | Ir.Call { args; _ } -> List.exists (fun a -> a = Ir.Reg r) args
      | _ -> false)
    false fn

(* ------------------------------------------------------------------ *)
(* The analysis proper                                                 *)
(* ------------------------------------------------------------------ *)

let is_universal ty =
  match Ctype.strip_all_quals ty with
  | Ctype.Ptr Ctype.Void | Ctype.Ptr (Ctype.Ptr Ctype.Void) -> true
  | Ctype.Ptr Ctype.Char -> true
  | _ -> false

let analyze (m : Ir.modul) : t =
  let t =
    {
      slots = Hashtbl.create 256;
      comp = Rsti_util.Uf.create ();
      tclass = Rsti_util.Uf.create ();
      cast_list = [];
      cast_occ = Hashtbl.create 64;
      all_types = SS.empty;
      pp_sites = 0;
      pp_special = [];
      addr_taken = Hashtbl.create 64;
      scope_cache = Hashtbl.create 256;
      stc_types_present = SS.empty;
    }
  in
  let note_type ty =
    if Ctype.is_pointer ty then t.all_types <- SS.add (type_str ty) t.all_types
  in
  (* Struct fields. *)
  List.iter
    (fun (sname, fields) ->
      List.iter
        (fun (fname, fty) ->
          let si = declare_field t sname fname fty in
          ignore si;
          note_type fty)
        fields)
    m.m_structs;
  (* Globals. *)
  List.iter
    (fun (g : Ir.global_def) ->
      let si = declare_variable t (Dinfo.variable_of_var g.gvar) in
      ignore si;
      note_type g.gvar.v_ty)
    m.m_globals;
  let global_ids = Hashtbl.create 32 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace global_ids g.gvar.Rsti_minic.Tast.v_name
        g.gvar.Rsti_minic.Tast.v_id)
    m.m_globals;
  (* Function params map: name -> param vars. *)
  let params_of = Hashtbl.create 32 in
  List.iter
    (fun (fn : Ir.func) -> Hashtbl.replace params_of fn.name fn.params)
    m.m_funcs;
  let defined name = Hashtbl.mem params_of name in
  (* Walk every function. *)
  List.iter
    (fun (fn : Ir.func) ->
      let defs = reg_defs fn in
      (* declarations from allocas *)
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Alloca { dv = Some dv; _ } ->
              ignore (declare_variable t dv);
              note_type dv.dv_type
          | _ -> ())
        fn;
      (* address-taken analysis (the mem2reg criterion, LLVM's
         isNonEscapingLocalObject): an alloca whose result is only ever a
         load/store address can live in a register at -O2 and needs no
         instrumentation; any other use of the address escapes it. *)
      let alloca_var = Hashtbl.create 16 in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Alloca { dst; dv = Some dv; _ } ->
              Hashtbl.replace alloca_var dst dv.Dinfo.dv_id
          | _ -> ())
        fn;
      let mark v =
        match v with
        | Ir.Reg r -> (
            match Hashtbl.find_opt alloca_var r with
            | Some id -> Hashtbl.replace t.addr_taken id ()
            | None -> ())
        | Ir.Global g -> (
            match Hashtbl.find_opt global_ids g with
            | Some id -> Hashtbl.replace t.addr_taken id ()
            | None -> ())
        | _ -> ()
      in
      Ir.iter_instrs
        (fun ins ->
          match ins.i with
          | Ir.Load { addr = _; _ } -> () (* address position: fine *)
          | Ir.Store { src; addr = _; _ } -> mark src
          | Ir.Gep { base; _ } -> mark base
          | Ir.Gepidx { base; idx; _ } -> mark base; mark idx
          | Ir.Bitcast { src; _ } -> mark src
          | Ir.Binop { a; b; _ } -> mark a; mark b
          | Ir.Neg { src; _ } | Ir.Lognot { src; _ } | Ir.Bitnot { src; _ }
          | Ir.Cast_num { src; _ } ->
              mark src
          | Ir.Call { callee; args; _ } ->
              (match callee with Ir.Indirect c -> mark c | Ir.Direct _ -> ());
              List.iter mark args
          | Ir.Alloca _ | Ir.Pac _ | Ir.Pp _ -> ())
        fn;
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Ir.Ret (Some v) -> mark v
          | Ir.Condbr (c, _, _) -> mark c
          | Ir.Ret None | Ir.Br _ | Ir.Unreachable -> ())
        fn.blocks;
      (* occurrences, flow edges, casts *)
      Ir.iter_instrs
        (fun ins ->
          let func = match ins.dbg with Some d -> d.dl_func | None -> fn.name in
          match ins.i with
          | Ir.Load { slot; ty; dst; _ } ->
              note_type ty;
              let si = slot_info t slot in
              add_occ si func;
              (* census: loading a pointer-to-pointer *)
              if Ctype.is_pointer_to_pointer ty then begin
                t.pp_sites <- t.pp_sites + 1;
                ignore dst
              end
          | Ir.Store { slot; ty; src; _ } ->
              note_type ty;
              let si = slot_info t slot in
              add_occ si func;
              if Ctype.is_pointer ty then
                Option.iter
                  (fun skey -> Rsti_util.Uf.union t.comp skey si.key)
                  (trace_source ~defined defs src)
          | Ir.Bitcast { src; from_ty; to_ty; dst } ->
              if Ctype.is_pointer from_ty && Ctype.is_pointer to_ty then begin
                let fs = type_str from_ty and ts = type_str to_ty in
                note_type from_ty;
                note_type to_ty;
                t.cast_list <- (func, fs, ts) :: t.cast_list;
                Rsti_util.Uf.union t.tclass fs ts;
                (match trace_source ~defined defs src with
                | Some skey -> Hashtbl.add t.cast_occ skey (func, ts)
                | None -> ());
                (* pp census: double pointer cast to a universal type whose
                   result feeds a call argument -> original type lost. *)
                if
                  Ctype.is_pointer_to_pointer from_ty
                  && is_universal to_ty
                  && (not (Ctype.is_pointer_to_pointer to_ty
                           && Ctype.equal
                                (Ctype.strip_all_quals from_ty)
                                (Ctype.strip_all_quals to_ty)))
                  && value_feeds_call fn dst
                then
                  t.pp_special <-
                    (func, Ctype.strip_all_quals from_ty) :: t.pp_special
              end
          | Ir.Call { callee; args; arg_tys; _ } -> (
              (* census: double pointers passed as arguments *)
              List.iter
                (fun ty ->
                  if Ctype.is_pointer_to_pointer ty then
                    t.pp_sites <- t.pp_sites + 1)
                arg_tys;
              match callee with
              | Ir.Direct f -> (
                  match Hashtbl.find_opt params_of f with
                  | Some params ->
                      List.iteri
                        (fun j arg ->
                          match List.nth_opt params j with
                          | Some (p : Rsti_minic.Tast.var)
                            when Ctype.is_pointer p.v_ty -> (
                              match trace_source ~defined defs arg with
                              | Some skey ->
                                  Rsti_util.Uf.union t.comp skey
                                    (slot_key (Ir.Svar p.v_id))
                              | None -> ())
                          | _ -> ())
                        args
                  | None -> ())
              | Ir.Indirect _ -> ())
          | Ir.Alloca _ | Ir.Gep _ | Ir.Gepidx _ | Ir.Binop _ | Ir.Neg _
          | Ir.Lognot _ | Ir.Bitnot _ | Ir.Cast_num _ | Ir.Pac _ | Ir.Pp _ ->
              ())
        fn;
      (* return flow *)
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Ir.Ret (Some v) when Ctype.is_pointer fn.ret -> (
              match trace_source ~defined defs v with
              | Some skey -> Rsti_util.Uf.union t.comp skey ("ret:" ^ fn.name)
              | None -> ())
          | _ -> ())
        fn.blocks)
    m.m_funcs;
  t

(* ------------------------------------------------------------------ *)
(* Scopes and RSTI-types                                                *)
(* ------------------------------------------------------------------ *)

let component_members t root =
  Hashtbl.fold
    (fun key si acc -> if Rsti_util.Uf.find t.comp key = root then si :: acc else acc)
    t.slots []

let component_of t slot = Rsti_util.Uf.find t.comp (slot_key slot)

let component_of_slot t slot =
  component_members t (component_of t slot)
  |> List.sort (fun a b -> compare a.key b.key)

let cast_occs t (si : slot_info) = Hashtbl.find_all t.cast_occ si.key

(* Scope of (component, basic type): occurrence functions of members with
   that type, cast sites targeting that type from inside the component,
   and the struct names of member fields of that type. *)
let scope_for t ~root ~tstr : SS.t =
  match Hashtbl.find_opt t.scope_cache (root, tstr) with
  | Some s -> s
  | None ->
      let members = component_members t root in
      let s = ref SS.empty in
      List.iter
        (fun si ->
          if type_str si.sty = tstr then begin
            List.iter (fun f -> s := SS.add f !s) si.occ;
            match si.kind with
            | Kfield sname -> s := SS.add ("struct " ^ sname) !s
            | Klocal | Kparam | Kglobal | Kanon -> ()
          end)
        members;
      (* cast occurrences inside the component that target this type *)
      List.iter
        (fun si ->
          List.iter
            (fun (func, target) -> if target = tstr then s := SS.add func !s)
            (Hashtbl.find_all t.cast_occ si.key))
        members;
      if SS.is_empty !s then s := SS.singleton "<unused>";
      Hashtbl.replace t.scope_cache (root, tstr) !s;
      !s

let stwc_rsti t si =
  let root = Rsti_util.Uf.find t.comp si.key in
  let tstr = type_str si.sty in
  let scope = scope_for t ~root ~tstr in
  Rsti_type.make ~types:[ tstr ] ~scope:(SS.elements scope) ~read_only:si.read_only

let type_class_names t tstr =
  let root = Rsti_util.Uf.find t.tclass tstr in
  let present = SS.elements t.all_types in
  let cls = List.filter (fun u -> Rsti_util.Uf.find t.tclass u = root) present in
  if cls = [] then [ tstr ] else cls

let type_class_of t ty = type_class_names t (type_str ty)

(* STC: compatible (cast-connected) types merge into one class; the
   scope is the union, over the slot's *flow component*, of the scopes of
   every class member type. Scope separation between unconnected slots is
   preserved (a Teacher's and a Student's same-typed fields stay
   distinct), which is what lets STC still stop the PittyPat replay while
   missing substitutions *within* a merged class (Table 2). *)
let stc_rsti t si =
  let root = Rsti_util.Uf.find t.comp si.key in
  let cls = type_class_of t si.sty in
  let scope =
    List.fold_left (fun acc u -> SS.union acc (scope_for t ~root ~tstr:u)) SS.empty cls
  in
  Rsti_type.make ~types:cls ~scope:(SS.elements scope) ~read_only:si.read_only

(* A pointer variable whose address escapes can be written through an
   arbitrary same-typed pointer; the sign and auth sites on the two paths
   must agree, so such variables share the anonymous (type-keyed) slot's
   RSTI-type. *)
let alias_slot t slot =
  match slot with
  | Ir.Svar id ->
      let si = slot_info t slot in
      if
        Hashtbl.mem t.addr_taken id
        && Ctype.is_pointer si.sty
        && (si.kind = Klocal || si.kind = Kglobal || si.kind = Kparam)
      then Ir.Sanon (Ctype.strip_all_quals si.sty)
      else slot
  | Ir.Sfield _ | Ir.Sanon _ -> slot

let rsti_of t mech slot =
  let slot = alias_slot t slot in
  let si = slot_info t slot in
  match mech with
  | Rsti_type.Stwc | Rsti_type.Stl -> stwc_rsti t si
  | Rsti_type.Stc -> stc_rsti t si
  | Rsti_type.Parts ->
      Rsti_type.make ~types:[ type_str si.sty ] ~scope:[ "<any>" ] ~read_only:false
  | Rsti_type.Nop -> invalid_arg "Analysis.rsti_of: Nop has no RSTI-types"

let modifier_of t mech slot =
  let slot = alias_slot t slot in
  match mech with
  | Rsti_type.Parts -> Rsti_type.parts_modifier (type_str (slot_info t slot).sty)
  | _ -> Rsti_type.modifier (rsti_of t mech slot)

let key_for ty = if Ctype.is_code_pointer ty then Rsti_pa.Key.IA else Rsti_pa.Key.DA

(* The instrumented-slot criterion, shared by the instrumenter and the
   static attack-surface analysis so both enumerate exactly the same
   sign/auth population. Memory that -O2 register-promotes (parameters,
   non-escaping locals) has no load/store traffic in the paper's
   optimized builds and so is not instrumented — except under PARTS,
   whose unoptimized codegen instruments everything. *)
let instrument_candidate t mech ty slot =
  Ctype.is_pointer ty
  &&
  match mech with
  | Rsti_type.Nop -> false
  | Rsti_type.Parts -> true
  | Rsti_type.Stwc | Rsti_type.Stc | Rsti_type.Stl -> (
      match slot with
      | Ir.Sfield _ | Ir.Sanon _ -> true
      | Ir.Svar id -> (
          match (slot_info t slot).kind with
          | Kglobal | Kfield _ | Kanon -> true
          | Klocal | Kparam -> Hashtbl.mem t.addr_taken id))

let casts t = List.rev t.cast_list

let pointer_vars t =
  Hashtbl.fold
    (fun _ si acc ->
      if Ctype.is_pointer si.sty && si.kind <> Kanon then si :: acc else acc)
    t.slots []
  |> List.sort (fun a b -> compare a.key b.key)

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  nt : int;
  rt_stwc : int;
  rt_stc : int;
  nv : int;
  largest_ecv_stwc : int;
  largest_ecv_stc : int;
  largest_ect_stwc : int;
  largest_ect_stc : int;
}

let stats t =
  let vars = pointer_vars t in
  let nv = List.length vars in
  let nt = SS.cardinal (SS.of_list (List.map (fun si -> type_str si.sty) vars)) in
  let group rsti_fn =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun si ->
        let rt = rsti_fn t si in
        let key = Rsti_type.to_string rt in
        let n, types =
          match Hashtbl.find_opt tbl key with
          | Some (n, types) -> (n, types)
          | None -> (0, rt.Rsti_type.rt_types)
        in
        Hashtbl.replace tbl key (n + 1, types))
      vars;
    let rt_count = Hashtbl.length tbl in
    let largest_ecv = Hashtbl.fold (fun _ (n, _) acc -> max acc n) tbl 0 in
    let largest_ect =
      Hashtbl.fold (fun _ (_, types) acc -> max acc (List.length types)) tbl 0
    in
    (rt_count, largest_ecv, largest_ect)
  in
  let rt_stwc, largest_ecv_stwc, largest_ect_stwc = group stwc_rsti in
  let rt_stc, largest_ecv_stc, largest_ect_stc = group stc_rsti in
  {
    nt;
    rt_stwc;
    rt_stc;
    nv;
    largest_ecv_stwc;
    largest_ecv_stc;
    largest_ect_stwc;
    largest_ect_stc;
  }

(* ------------------------------------------------------------------ *)
(* Pointer-to-pointer census and CE table                              *)
(* ------------------------------------------------------------------ *)

type pp_census = {
  pp_total_sites : int;
  pp_special : (string * Ctype.t) list;
}

let pp_census t = { pp_total_sites = t.pp_sites; pp_special = List.rev t.pp_special }

let ce_table (t : t) =
  let seen = Hashtbl.create 8 in
  let next = ref 0 in
  List.rev t.pp_special
  |> List.filter_map (fun (_, ty) ->
         let key = type_str ty in
         if Hashtbl.mem seen key then None
         else begin
           Hashtbl.replace seen key ();
           incr next;
           if !next > 255 then None (* CE is 8 bits; 0 reserved *)
           else
             Some (ty, !next, Rsti_type.parts_modifier ("ppfe:" ^ key))
         end)

let address_taken t id = Hashtbl.mem t.addr_taken id

type mechanism = Stwc | Stc | Stl | Parts | Nop

let mechanism_to_string = function
  | Stwc -> "RSTI-STWC"
  | Stc -> "RSTI-STC"
  | Stl -> "RSTI-STL"
  | Parts -> "PARTS"
  | Nop -> "baseline"

let all_mechanisms = [ Stwc; Stc; Stl ]

type t = { rt_types : string list; rt_scope : string list; rt_read_only : bool }

let make ~types ~scope ~read_only =
  {
    rt_types = List.sort_uniq compare types;
    rt_scope = List.sort_uniq compare scope;
    rt_read_only = read_only;
  }

let to_string t =
  Printf.sprintf "{%s} @ {%s} %s"
    (String.concat "," t.rt_types)
    (String.concat "," t.rt_scope)
    (if t.rt_read_only then "R" else "R/W")

(* FNV-1a over the canonical string, then a splitmix finalizer so that
   near-identical strings still give wildly different modifiers. *)
let hash_string s =
  let fnv_offset = 0xCBF29CE484222325L and fnv_prime = 0x100000001B3L in
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Rsti_util.Splitmix.next64 (Rsti_util.Splitmix.create !h)

let modifier t = hash_string ("rsti:" ^ to_string t)

let parts_modifier basic_type = hash_string ("parts:" ^ basic_type)

let equal a b = a = b
let compare = compare

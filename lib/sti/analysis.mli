(** The compile-time STI analysis (paper section 4.4): walks the IR and
    its debug metadata to recover, for every pointer slot (named variable,
    struct field, or anonymous deref target), the programmer's intent —
    basic type, scope, and permission — and derives each mechanism's
    RSTI-types and PA modifiers from it.

    Scope construction: the slot's occurrence functions (every load/store
    site's [!dbg] function, plus its declaration function), widened across
    the interprocedural flow component the slot belongs to (assignments,
    argument passing, returns — the paper's "escaping variables"), per
    basic type; composite types contribute their ["struct X"] name to
    their members' scope (field-sensitive analysis, section 4.7.4); cast
    sites contribute their function to the scope of the cast's target
    type within the flow component.

    STC merging: basic types connected by any cast in the program are
    compatible (section 4.8) and collapse into one type class. *)

type slot_kind =
  | Klocal
  | Kparam
  | Kglobal
  | Kfield of string  (** owning struct *)
  | Kanon

type slot_info = {
  slot : Rsti_ir.Ir.slot;
  key : string;                         (** canonical identity *)
  sty : Rsti_minic.Ctype.t;             (** declared type (with quals) *)
  read_only : bool;                     (** permission *)
  kind : slot_kind;
  decl_func : string option;
  mutable occ : string list;            (** occurrence functions *)
}

type t

val analyze : Rsti_ir.Ir.modul -> t
(** Run the whole-program analysis (the paper runs its pass at LTO time
    for the same whole-program view, section 5). *)

val slot_info : t -> Rsti_ir.Ir.slot -> slot_info
(** Info for a slot appearing in the module; anonymous slots are created
    on demand. *)

val rsti_of : t -> Rsti_type.mechanism -> Rsti_ir.Ir.slot -> Rsti_type.t
(** The slot's RSTI-type under a mechanism. [Stl] shares [Stwc]'s
    RSTI-type (the location is added at runtime); [Parts] degenerates to
    the basic type; [Nop] raises. *)

val modifier_of : t -> Rsti_type.mechanism -> Rsti_ir.Ir.slot -> int64
(** The PA modifier constant for a slot under a mechanism. *)

val address_taken : t -> int -> bool
(** Whether a local variable's address escapes (is used other than as a
    direct load/store address). Non-escaping locals are register-promoted
    at -O2 (LLVM's [isNonEscapingLocalObject], paper section 4.5) and are
    not instrumented. *)

val key_for : Rsti_minic.Ctype.t -> Rsti_pa.Key.which
(** Code pointers use the IA key, data pointers DA (section 2.4). *)

val instrument_candidate :
  t -> Rsti_type.mechanism -> Rsti_minic.Ctype.t -> Rsti_ir.Ir.slot -> bool
(** Whether an access of type [ty] through this slot carries PAC
    instrumentation under the mechanism — the single criterion shared by
    {!Rsti_rsti.Instrument} and the attack-surface analysis
    ({!Rsti_dataflow.Equiv}), so the static sign/auth population and the
    instrumenter's never drift apart. Fields and anonymous deref targets
    always qualify; locals and parameters only when their address
    escapes ({!address_taken}); [Parts] instruments every pointer slot;
    [Nop] none. *)

val casts : t -> (string * string * string) list
(** All pointer casts: (function, from-type, to-type). *)

val slot_key : Rsti_ir.Ir.slot -> string
(** The canonical string identity of a slot (the [key] field of its
    {!slot_info}); what the flow-component union-find is keyed by. *)

val alias_slot : t -> Rsti_ir.Ir.slot -> Rsti_ir.Ir.slot
(** The slot the instrumentation actually keys modifiers on: a pointer
    variable whose address escapes shares the anonymous (type-keyed)
    slot, so writes through arbitrary same-typed pointers and direct
    accesses agree on one modifier. Other slots map to themselves. *)

val component_of : t -> Rsti_ir.Ir.slot -> string
(** Representative key of the slot's interprocedural flow component. *)

val component_of_slot : t -> Rsti_ir.Ir.slot -> slot_info list
(** All slots in the same flow component, sorted by key (deterministic —
    the static checker's passes iterate this). *)

val cast_occs : t -> slot_info -> (string * string) list
(** Cast occurrences whose source value was loaded from this slot:
    (function, target type). Non-empty means values flowing out of the
    slot are laundered through pointer casts. *)

val pointer_vars : t -> slot_info list
(** All named pointer variables (locals, params, globals, fields) — the
    population Table 3 counts. *)

val type_class_of : t -> Rsti_minic.Ctype.t -> string list
(** The STC compatible-type class containing a type (as type names). *)

val type_class_names : t -> string -> string list
(** Same, keyed by the canonical type name (qualifiers stripped). *)

type stats = {
  nt : int;                  (** distinct basic pointer types (Table 3 NT) *)
  rt_stwc : int;             (** STWC RSTI-types (Table 3 RT/STWC) *)
  rt_stc : int;              (** STC RSTI-types (Table 3 RT/STC) *)
  nv : int;                  (** pointer variables (Table 3 NV) *)
  largest_ecv_stwc : int;    (** Table 3 Largest ECV / STWC *)
  largest_ecv_stc : int;     (** Table 3 Largest ECV / STC *)
  largest_ect_stwc : int;    (** always 1 by construction *)
  largest_ect_stc : int;     (** Table 3 Largest ECT / STC *)
}

val stats : t -> stats
(** The Table 3 row for this module. *)

type pp_census = {
  pp_total_sites : int;   (** double-pointer loads + double-pointer call
                              arguments (the paper's 7,489 for SPEC2006) *)
  pp_special : (string * Rsti_minic.Ctype.t) list;
      (** sites where the original type is lost — a double pointer cast to
          a universal type and passed as an argument (the paper's 25):
          (function, original type) *)
}

val pp_census : t -> pp_census

val ce_table : t -> (Rsti_minic.Ctype.t * int * int64) list
(** CE assignments for the special sites' original types:
    (original type, CE tag in 1..255, FE modifier). *)

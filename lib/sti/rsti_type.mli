(** RSTI-types: the security context each mechanism derives from a
    pointer's scope, type, and permission (paper section 4.5), and the
    64-bit PA modifiers derived from them.

    A pointer whose runtime usage does not match the modifier derived from
    its RSTI-type fails authentication — that is the entire enforcement
    story, so modifier derivation must be deterministic and injective on
    distinct RSTI-types (up to the 64-bit hash). *)

type mechanism =
  | Stwc   (** scope-type without combining (main mechanism) *)
  | Stc    (** scope-type with combining of cast-compatible types *)
  | Stl    (** scope-type + location (&p folded into the modifier) *)
  | Parts  (** baseline: basic element type only, as in PARTS *)
  | Nop    (** no instrumentation (baseline for overhead ratios) *)

val mechanism_to_string : mechanism -> string
val all_mechanisms : mechanism list
(** The three RSTI mechanisms, in the paper's order: STWC, STC, STL. *)

type t = {
  rt_types : string list;   (** basic types in the class, sorted; singleton
                                for STWC/STL, possibly larger for STC *)
  rt_scope : string list;   (** scope: function names and ["struct X"]
                                composite names, sorted *)
  rt_read_only : bool;      (** permission: R (true) or R/W (false) *)
}

val make : types:string list -> scope:string list -> read_only:bool -> t
(** Canonicalise (sort, dedup) and build. *)

val to_string : t -> string
(** Stable rendering, e.g. ["{ctx*,void*} @ {foo2,main} R/W"]; used both
    for reports and as the hash pre-image. *)

val modifier : t -> int64
(** The 64-bit PA modifier: a splitmix-mixed FNV-1a hash of
    {!to_string}. *)

val parts_modifier : string -> int64
(** The PARTS baseline modifier: hash of the basic type name alone
    (the LLVM ElementType analogue, paper section 8). *)

val equal : t -> t -> bool
val compare : t -> t -> int

(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation and times the machinery behind each with Bechamel
   (one Test.make per table/figure, all in this one executable).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1 fig9  # selected sections
     dune exec bench/main.exe -- list         # section names

   Sections: table1 table2 table3 fig9 fig10 pp-census parts correlation
             ablation-pac ablation-merge ablation-stl ablation-ce elide
             micro *)

module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab

let sections_requested =
  match Array.to_list Sys.argv with [] | [ _ ] -> None | _ :: rest -> Some rest

let want name =
  match sections_requested with None -> true | Some l -> List.mem name l

let section title = print_endline (Tab.section title)

(* Perf data is shared between fig9/fig10/correlation; collected lazily. *)
let perf = lazy (Rsti_report.Perf.collect ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per reproduced table or
   figure, timing the machinery that regenerates it, plus primitive
   micro-benchmarks for the PA substrate.                              *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  (* primitives *)
  let pac_ctx = Rsti_pa.Pac.make ~seed:7L () in
  let qkey = Rsti_pa.Qarma.key_of_rng (Rsti_util.Splitmix.create 5L) in
  let counter = ref 0L in
  let t_qarma =
    Test.make ~name:"micro: qarma-64 encrypt"
      (Staged.stage (fun () ->
           counter := Int64.add !counter 1L;
           ignore (Rsti_pa.Qarma.encrypt ~key:qkey ~tweak:!counter 0xDEADBEEFL)))
  in
  let t_pac =
    Test.make ~name:"micro: pac sign+auth (uncached modifier)"
      (Staged.stage (fun () ->
           counter := Int64.add !counter 1L;
           let s =
             Rsti_pa.Pac.sign pac_ctx ~key:Rsti_pa.Key.DA ~modifier:!counter
               0x2000_0040L
           in
           ignore (Rsti_pa.Pac.auth pac_ctx ~key:Rsti_pa.Key.DA ~modifier:!counter s)))
  in
  (* Table 1: one end-to-end attack scenario (compile+instrument+run) *)
  let t_table1 =
    Test.make ~name:"table1: ghttpd scenario under STWC"
      (Staged.stage (fun () ->
           ignore (Rsti_attacks.Scenario.run Rsti_attacks.Catalog.ghttpd RT.Stwc)))
  in
  (* Table 2: one substitution scenario *)
  let t_table2 =
    Test.make ~name:"table2: same-RSTI replay under STL"
      (Staged.stage (fun () ->
           ignore (Rsti_attacks.Scenario.run Rsti_attacks.Substitution.same_rsti_replay RT.Stl)))
  in
  (* Table 3: equivalence-class analysis of one SPEC kernel *)
  let xalan = List.nth Rsti_workloads.Spec2006.all 17 in
  let t_table3 =
    Test.make ~name:"table3: xalancbmk EC analysis"
      (Staged.stage (fun () ->
           ignore (Rsti_sti.Analysis.stats (Rsti_workloads.Run.analyze_workload xalan))))
  in
  (* Figure 9: one workload measured under one mechanism *)
  let nginx = Rsti_workloads.Nginx.workload in
  let t_fig9 =
    Test.make ~name:"fig9: nginx overhead measurement (STWC)"
      (Staged.stage (fun () ->
           ignore (Rsti_workloads.Run.measure nginx [ RT.Stwc ])))
  in
  (* Figure 10: distribution summary over a suite's overheads *)
  let overheads = List.init 18 (fun i -> float_of_int (i * i mod 23)) in
  let t_fig10 =
    Test.make ~name:"fig10: boxplot summary"
      (Staged.stage (fun () -> ignore (Rsti_util.Stats.boxplot overheads)))
  in
  (* 6.2.2: pointer-to-pointer census *)
  let pp_w = List.hd Rsti_workloads.Spec2006.all in
  let t_census =
    Test.make ~name:"pp-census: perlbench kernel scan"
      (Staged.stage (fun () ->
           ignore
             (Rsti_sti.Analysis.pp_census (Rsti_workloads.Run.analyze_workload pp_w))))
  in
  (* the instrumentation pass itself *)
  let modul = lazy (Rsti_ir.Lower.compile ~file:"b.c" pp_w.Rsti_workloads.Workload.source) in
  let t_pass =
    Test.make ~name:"pass: instrument perlbench kernel (STWC)"
      (Staged.stage (fun () ->
           let m = Lazy.force modul in
           let anal = Rsti_sti.Analysis.analyze m in
           ignore (Rsti_rsti.Instrument.instrument RT.Stwc anal m)))
  in
  Test.make_grouped ~name:"rsti"
    [ t_qarma; t_pac; t_table1; t_table2; t_table3; t_fig9; t_fig10; t_census; t_pass ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns per run):\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_endline (Tab.render ~header:[ "benchmark"; "ns/run" ] rows)

(* ------------------------------------------------------------------ *)

let () =
  (match sections_requested with
  | Some [ "list" ] ->
      List.iter print_endline
        [ "table1"; "table2"; "table3"; "fig9"; "fig10"; "pp-census"; "parts";
          "correlation"; "ablation-pac"; "ablation-merge"; "ablation-stl";
          "ablation-ce"; "ablation-pac-width"; "backend"; "elide"; "micro" ];
      exit 0
  | _ -> ());
  if want "table1" then begin
    section "Table 1: attack catalog";
    print_endline (Rsti_report.Security.table1 ())
  end;
  if want "table2" then begin
    section "Table 2: substitution matrix";
    print_endline (Rsti_report.Security.table2 ())
  end;
  if want "table3" then begin
    section "Table 3: equivalence classes";
    print_endline (Rsti_report.Figures.table3 ())
  end;
  if want "fig9" then begin
    section "Figure 9: overheads";
    print_endline (Rsti_report.Figures.fig9 (Lazy.force perf))
  end;
  if want "fig10" then begin
    section "Figure 10: distributions";
    print_endline (Rsti_report.Figures.fig10 (Lazy.force perf))
  end;
  if want "pp-census" then begin
    section "6.2.2: pointer-to-pointer census";
    print_endline (Rsti_report.Figures.pp_census ())
  end;
  if want "parts" then begin
    section "6.3.2: PARTS comparison (nbench)";
    print_endline (Rsti_report.Figures.parts_comparison ())
  end;
  if want "correlation" then begin
    section "6.3.2: overhead/instrumentation correlation";
    print_endline (Rsti_report.Figures.correlation (Lazy.force perf))
  end;
  if want "ablation-pac" then begin
    section "Ablation: PA cost sweep";
    print_endline (Rsti_report.Ablation.pac_cost_sweep ())
  end;
  if want "ablation-merge" then begin
    section "Ablation: STC merging";
    print_endline (Rsti_report.Ablation.merge_effect ())
  end;
  if want "ablation-stl" then begin
    section "Ablation: STL argument re-signing";
    print_endline (Rsti_report.Ablation.stl_argument_cost ())
  end;
  if want "ablation-ce" then begin
    section "Ablation: CE width";
    print_endline (Rsti_report.Ablation.ce_width ())
  end;
  if want "ablation-pac-width" then begin
    section "Ablation: PAC width vs brute force";
    print_endline (Rsti_report.Ablation.pac_brute_force ())
  end;
  if want "backend" then begin
    section "Extension: shadow-MAC backend (section 7)";
    print_endline (Rsti_report.Ablation.backend_comparison ())
  end;
  if want "elide" then begin
    section "Elision: instrumented-site reduction and overhead delta";
    print_endline (Rsti_report.Ablation.elision ());
    section "Elision: safety invariant (Table 1 under elision)";
    print_endline (Rsti_report.Security.elide_safety ())
  end;
  if want "micro" then begin
    section "Bechamel micro-benchmarks";
    run_bechamel ()
  end

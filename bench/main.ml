(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation and times the machinery behind each with Bechamel
   (one Test.make per table/figure, all in this one executable).

   Experiment execution goes through the engine (lib/engine): the staged
   pipeline memoizes compile/analysis artifacts across sections in the
   content-keyed cache, and suite measurements fan out over the domain
   pool (--jobs / RSTI_JOBS). Output is byte-identical for any job count.

   Usage:
     dune exec bench/main.exe                      # everything
     dune exec bench/main.exe -- table1 fig9       # selected sections
     dune exec bench/main.exe -- --jobs 4 fig9     # 4 worker domains
     dune exec bench/main.exe -- list              # section names

   Sections: table1 table2 table3 fig9 fig10 pp-census parts correlation
             ablation-pac ablation-merge ablation-stl ablation-ce
             ablation-pac-width backend elide elide-precision
             elide-precision-cs validate attack-surface detection-latency
             micro

   Every run also writes a machine-readable summary (BENCH_fig9.json by
   default): per-benchmark overheads and geomeans when the perf sections
   ran, plus wall-clock per section, the job count, and artifact-cache
   statistics — the perf trajectory tracked across PRs. The telemetry
   counter registry lands next to it (BENCH_metrics.json, --metrics to
   move); --trace PATH additionally records spans and writes a Chrome
   trace-event document loadable in Perfetto. *)

module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab
module J = Rsti_staticcheck.Json
module Perf = Rsti_report.Perf

let section title = print_endline (Tab.section title)

(* Perf data is shared between fig9/fig10/correlation; collected lazily,
   fanned out over the engine's domain pool. *)
let perf = lazy (Perf.collect ())

(* Captured when the elide-precision-cs section runs so json_summary can
   embed the per-mode safe counts and wall-clocks. *)
let cs_rows : Rsti_report.Ablation.cs_row list ref = ref []

(* Captured when the attack-surface section runs: the per-workload class
   metrics and the static/dynamic cross-validation summary. *)
let as_rows : Rsti_report.Attack_surface.row list ref = ref []
let as_crossval : Rsti_attacks.Crossval.summary option ref = ref None

(* Captured when the detection-latency section runs: the incident
   coverage map behind the latency histograms and the event log. *)
let inc_cov : Rsti_attacks.Incident.coverage option ref = ref None

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per reproduced table or
   figure, timing the machinery that regenerates it, plus primitive
   micro-benchmarks for the PA substrate.                              *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let module Pipeline = Rsti_engine.Pipeline in
  (* primitives *)
  let pac_ctx = Rsti_pa.Pac.make ~seed:7L () in
  let qkey = Rsti_pa.Qarma.key_of_rng (Rsti_util.Splitmix.create 5L) in
  let counter = ref 0L in
  let t_qarma =
    Test.make ~name:"micro: qarma-64 encrypt"
      (Staged.stage (fun () ->
           counter := Int64.add !counter 1L;
           ignore (Rsti_pa.Qarma.encrypt ~key:qkey ~tweak:!counter 0xDEADBEEFL)))
  in
  let t_pac =
    Test.make ~name:"micro: pac sign+auth (uncached modifier)"
      (Staged.stage (fun () ->
           counter := Int64.add !counter 1L;
           let s =
             Rsti_pa.Pac.sign pac_ctx ~key:Rsti_pa.Key.DA ~modifier:!counter
               0x2000_0040L
           in
           ignore (Rsti_pa.Pac.auth pac_ctx ~key:Rsti_pa.Key.DA ~modifier:!counter s)))
  in
  (* Table 1: one end-to-end attack scenario (compile+instrument+run) *)
  let t_table1 =
    Test.make ~name:"table1: ghttpd scenario under STWC"
      (Staged.stage (fun () ->
           ignore (Rsti_attacks.Scenario.run Rsti_attacks.Catalog.ghttpd RT.Stwc)))
  in
  (* Table 2: one substitution scenario *)
  let t_table2 =
    Test.make ~name:"table2: same-RSTI replay under STL"
      (Staged.stage (fun () ->
           ignore (Rsti_attacks.Scenario.run Rsti_attacks.Substitution.same_rsti_replay RT.Stl)))
  in
  (* Table 3: equivalence-class analysis of one SPEC kernel *)
  let xalan = List.nth Rsti_workloads.Spec2006.all 17 in
  let t_table3 =
    Test.make ~name:"table3: xalancbmk EC analysis"
      (Staged.stage (fun () ->
           ignore (Rsti_sti.Analysis.stats (Rsti_workloads.Run.analyze_workload xalan))))
  in
  (* Figure 9: one workload measured under one mechanism *)
  let nginx = Rsti_workloads.Nginx.workload in
  let t_fig9 =
    Test.make ~name:"fig9: nginx overhead measurement (STWC)"
      (Staged.stage (fun () ->
           ignore (Rsti_workloads.Run.measure nginx [ RT.Stwc ])))
  in
  (* Figure 10: distribution summary over a suite's overheads *)
  let overheads = List.init 18 (fun i -> float_of_int (i * i mod 23)) in
  let t_fig10 =
    Test.make ~name:"fig10: boxplot summary"
      (Staged.stage (fun () -> ignore (Rsti_util.Stats.boxplot overheads)))
  in
  (* 6.2.2: pointer-to-pointer census *)
  let pp_w = List.hd Rsti_workloads.Spec2006.all in
  let t_census =
    Test.make ~name:"pp-census: perlbench kernel scan"
      (Staged.stage (fun () ->
           ignore
             (Rsti_sti.Analysis.pp_census (Rsti_workloads.Run.analyze_workload pp_w))))
  in
  (* the instrumentation pass itself, through the staged pipeline with
     the cache off (timing the pass, not the memo table) *)
  let cold = { Pipeline.default with Pipeline.cache = false } in
  let analyzed =
    lazy
      (Pipeline.analyze ~config:cold
         (Pipeline.compile ~config:cold
            (Pipeline.source ~file:"b.c" pp_w.Rsti_workloads.Workload.source)))
  in
  let t_pass =
    Test.make ~name:"pass: instrument perlbench kernel (STWC)"
      (Staged.stage (fun () ->
           ignore (Pipeline.instrument ~config:cold RT.Stwc (Lazy.force analyzed))))
  in
  Test.make_grouped ~name:"rsti"
    [ t_qarma; t_pac; t_table1; t_table2; t_table3; t_fig9; t_fig10; t_census; t_pass ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns per run):\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f" e
        | _ -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_endline (Tab.render ~header:[ "benchmark"; "ns/run" ] rows)

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)
(* ------------------------------------------------------------------ *)

let sections : (string * string * (unit -> unit)) list =
  [
    ( "table1", "Table 1: attack catalog",
      fun () -> print_endline (Rsti_report.Security.table1 ()) );
    ( "table2", "Table 2: substitution matrix",
      fun () -> print_endline (Rsti_report.Security.table2 ()) );
    ( "table3", "Table 3: equivalence classes",
      fun () -> print_endline (Rsti_report.Figures.table3 ()) );
    ( "fig9", "Figure 9: overheads",
      fun () -> print_endline (Rsti_report.Figures.fig9 (Lazy.force perf)) );
    ( "fig10", "Figure 10: distributions",
      fun () -> print_endline (Rsti_report.Figures.fig10 (Lazy.force perf)) );
    ( "pp-census", "6.2.2: pointer-to-pointer census",
      fun () -> print_endline (Rsti_report.Figures.pp_census ()) );
    ( "parts", "6.3.2: PARTS comparison (nbench)",
      fun () -> print_endline (Rsti_report.Figures.parts_comparison ()) );
    ( "correlation", "6.3.2: overhead/instrumentation correlation",
      fun () -> print_endline (Rsti_report.Figures.correlation (Lazy.force perf)) );
    ( "ablation-pac", "Ablation: PA cost sweep",
      fun () -> print_endline (Rsti_report.Ablation.pac_cost_sweep ()) );
    ( "ablation-merge", "Ablation: STC merging",
      fun () -> print_endline (Rsti_report.Ablation.merge_effect ()) );
    ( "ablation-stl", "Ablation: STL argument re-signing",
      fun () -> print_endline (Rsti_report.Ablation.stl_argument_cost ()) );
    ( "ablation-ce", "Ablation: CE width",
      fun () -> print_endline (Rsti_report.Ablation.ce_width ()) );
    ( "ablation-pac-width", "Ablation: PAC width vs brute force",
      fun () -> print_endline (Rsti_report.Ablation.pac_brute_force ()) );
    ( "backend", "Extension: shadow-MAC backend (section 7)",
      fun () -> print_endline (Rsti_report.Ablation.backend_comparison ()) );
    ( "elide", "Elision: instrumented-site reduction and overhead delta",
      fun () ->
        print_endline (Rsti_report.Ablation.elision ());
        section "Elision: safety invariant (Table 1 under elision)";
        print_endline (Rsti_report.Security.elide_safety ()) );
    ( "elide-precision", "Elision precision: syntactic vs points-to",
      fun () ->
        print_endline (Rsti_report.Ablation.elide_precision ());
        section "Elision: safety invariant (points-to precision)";
        print_endline
          (Rsti_report.Security.elide_safety
             ~elision:Rsti_staticcheck.Elide.With_points_to ()) );
    ( "elide-precision-cs", "Elision precision: context-sensitive ladder",
      fun () ->
        let rows = Rsti_report.Ablation.elide_precision_cs_data () in
        cs_rows := rows;
        print_endline (Rsti_report.Ablation.render_elide_precision_cs rows) );
    ( "validate", "PAC-typestate translation validation",
      fun () -> print_endline (Rsti_report.Security.validation ()) );
    ( "attack-surface", "Static substitution attack surface + cross-validation",
      fun () ->
        let rows = Rsti_report.Attack_surface.collect () in
        as_rows := rows;
        print_endline (Rsti_report.Attack_surface.render rows);
        section "Static/dynamic cross-validation";
        let s = Rsti_report.Attack_surface.crossval_summary () in
        as_crossval := Some s;
        print_endline (Rsti_report.Attack_surface.render_crossval s) );
    ( "detection-latency",
      "Security-event forensics: detection latency + coverage map",
      fun () ->
        let cov = Rsti_attacks.Incident.collect () in
        inc_cov := Some cov;
        Rsti_attacks.Incident.emit_events cov;
        print_endline (Rsti_report.Incidents.render cov) );
    ("micro", "Bechamel micro-benchmarks", run_bechamel);
  ]

(* ------------------------------------------------------------------ *)
(* Machine-readable summary (BENCH_fig9.json)                          *)
(* ------------------------------------------------------------------ *)

let mech_slug = function
  | RT.Stwc -> "stwc"
  | RT.Stc -> "stc"
  | RT.Stl -> "stl"
  | RT.Parts -> "parts"
  | RT.Nop -> "none"

let json_summary ~jobs ~wall_clock ~timed =
  let cache = Rsti_engine.Cache.stats () in
  let perf_fields =
    if not (Lazy.is_val perf) then []
    else begin
      let p = Lazy.force perf in
      let benchmarks =
        List.map
          (fun (m : Rsti_workloads.Run.measurement) ->
            J.Obj
              [
                ("name", J.Str m.workload.Rsti_workloads.Workload.name);
                ( "suite",
                  J.Str
                    (Rsti_workloads.Workload.suite_to_string
                       m.workload.Rsti_workloads.Workload.suite) );
                ("mech", J.Str (mech_slug m.mech));
                ("base_cycles", J.Int m.base_cycles);
                ("mech_cycles", J.Int m.mech_cycles);
                ("overhead_pct", J.Float m.overhead_pct);
              ])
          (Perf.all p)
      in
      let geomean ms mech =
        Rsti_util.Stats.geomean_overhead (Perf.overheads (Perf.of_mech ms mech))
      in
      let geomeans =
        List.concat_map
          (fun (label, ms) ->
            List.map
              (fun mech ->
                J.Obj
                  [
                    ("suite", J.Str label);
                    ("mech", J.Str (mech_slug mech));
                    ("overhead_pct", J.Float (geomean ms mech));
                  ])
              RT.all_mechanisms)
          [
            ("SPEC2006", p.Perf.spec2006);
            ("SPEC2017", p.Perf.spec2017);
            ("nbench", p.Perf.nbench);
            ("CPython", p.Perf.pytorch);
            ("NGINX", p.Perf.nginx);
            ("all", Perf.all p);
          ]
      in
      [ ("benchmarks", J.List benchmarks); ("geomeans", J.List geomeans) ]
    end
  in
  let cs_fields =
    match !cs_rows with
    | [] -> []
    | rows ->
        [
          ( "elide-precision-cs",
            J.List
              (List.map
                 (fun (r : Rsti_report.Ablation.cs_row) ->
                   J.Obj
                     [
                       ("name", J.Str r.cs_name);
                       ("candidates", J.Int r.cs_candidates);
                       ("safe_syntactic", J.Int r.cs_safe_syn);
                       ("safe_points_to", J.Int r.cs_safe_pt);
                       ("safe_cloning_k2", J.Int r.cs_safe_cs);
                       ("seconds_points_to", J.Float r.cs_seconds_pt);
                       ("seconds_cloning_k2", J.Float r.cs_seconds_cs);
                     ])
                 rows) );
        ]
  in
  let as_fields =
    match !as_rows with
    | [] -> []
    | rows ->
        let mode_slug = function
          | None -> "oracle"
          | Some m -> Rsti_dataflow.Points_to.mode_to_string m
        in
        let row (r : Rsti_report.Attack_surface.row) =
          let m = r.Rsti_report.Attack_surface.as_metrics in
          J.Obj
            [
              ("workload", J.Str r.Rsti_report.Attack_surface.as_workload);
              ("mech", J.Str (mech_slug r.Rsti_report.Attack_surface.as_mech));
              ("mode", J.Str (mode_slug r.Rsti_report.Attack_surface.as_mode));
              ("candidates", J.Int m.Rsti_dataflow.Equiv.m_candidates);
              ("classes", J.Int m.Rsti_dataflow.Equiv.m_classes);
              ("singletons", J.Int m.Rsti_dataflow.Equiv.m_singletons);
              ("largest_class", J.Int m.Rsti_dataflow.Equiv.m_largest);
              ("replay_edges", J.Int m.Rsti_dataflow.Equiv.m_replay_edges);
              ("feasible_edges", J.Int m.Rsti_dataflow.Equiv.m_feasible_edges);
            ]
        in
        let crossval =
          match !as_crossval with
          | None -> []
          | Some s ->
              [
                ( "crossval",
                  J.Obj
                    [
                      ("checks", J.Int s.Rsti_attacks.Crossval.s_checked);
                      ( "disagreements",
                        J.Int s.Rsti_attacks.Crossval.s_disagreements );
                      ("skipped", J.Int s.Rsti_attacks.Crossval.s_skipped);
                    ] );
              ]
        in
        [
          ( "attack-surface",
            J.Obj
              ([
                 ("rows", J.List (List.map row rows));
                 ( "monotone_refinement",
                   J.Bool
                     (Rsti_report.Attack_surface.class_refinement_ok rows
                     && Rsti_report.Attack_surface.feasible_refinement_ok rows)
                 );
               ]
              @ crossval) );
        ]
  in
  let inc_fields =
    match !inc_cov with
    | None -> []
    | Some cov ->
        let module Incident = Rsti_attacks.Incident in
        let hist samples =
          let q p =
            match samples with
            | [] -> J.Null
            | _ ->
                J.Float
                  (Rsti_util.Stats.quantile p
                     (List.map float_of_int samples))
          in
          J.Obj
            [
              ("count", J.Int (List.length samples));
              ( "min",
                match samples with
                | [] -> J.Null
                | x :: _ -> J.Int x );
              ( "max",
                match List.rev samples with
                | [] -> J.Null
                | x :: _ -> J.Int x );
              ("p50", q 0.5);
              ("p90", q 0.9);
              ("p99", q 0.99);
            ]
        in
        let mech_obj (mc : Incident.mech_cov) =
          J.Obj
            [
              ("mech", J.Str (mech_slug mc.Incident.mc_mech));
              ("runs", J.Int mc.Incident.mc_runs);
              ("detected", J.Int mc.Incident.mc_detected);
              ("incidents", J.Int mc.Incident.mc_incidents);
              ("mapped", J.Int mc.Incident.mc_mapped);
              ("replays", J.Int mc.Incident.mc_replays);
              ("raw_overwrites", J.Int mc.Incident.mc_raw);
              ("latency_cycles", hist mc.Incident.mc_latency_cycles);
              ("latency_instrs", hist mc.Incident.mc_latency_instrs);
              ( "static_replay_edges",
                J.Int mc.Incident.mc_static_replay_edges );
              ( "static_feasible_edges",
                J.Int mc.Incident.mc_static_feasible_edges );
              ("replayable_total", J.Int mc.Incident.mc_replayable_total);
              ( "replayable_exercised",
                J.Int mc.Incident.mc_replayable_exercised );
              ("nonedges_checked", J.Int mc.Incident.mc_nonedges_checked);
            ]
        in
        [
          ( "detection-latency",
            J.Obj
              [
                ("flight", J.Int cov.Incident.cov_flight);
                ("detected", J.Int cov.Incident.cov_detected);
                ("incidents", J.Int cov.Incident.cov_incidents);
                ("unmapped", J.Int cov.Incident.cov_unmapped);
                ( "missing",
                  J.Int (List.length cov.Incident.cov_missing) );
                ( "verdict",
                  J.Str (if Incident.ok cov then "OK" else "FAIL") );
                ( "mechanisms",
                  J.List (List.map mech_obj cov.Incident.cov_mechs) );
              ] );
        ]
  in
  J.Obj
    ([
       ("schema", J.Str "rsti-bench-fig9/1");
       ("jobs", J.Int jobs);
       ("wall_clock_s", J.Float wall_clock);
       ( "sections",
         J.List
           (List.map
              (fun (name, seconds) ->
                J.Obj [ ("name", J.Str name); ("seconds", J.Float seconds) ])
              (List.rev timed)) );
       ( "cache",
         J.Obj
           [
             ("hits", J.Int cache.Rsti_engine.Cache.hits);
             ("misses", J.Int cache.Rsti_engine.Cache.misses);
             ("duplicated", J.Int cache.Rsti_engine.Cache.duplicated);
           ] );
     ]
    @ cs_fields @ as_fields @ inc_fields @ perf_fields)

(* ------------------------------------------------------------------ *)

open Cmdliner

let json_path_arg =
  Arg.(
    value
    & opt string "BENCH_fig9.json"
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Where to write the machine-readable summary.")

let trace_path_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Record spans (sections, pipeline stages, scheduler tasks, \
           cache lookups, dataflow fixpoints) and write a Chrome \
           trace-event JSON document here. Span recording is off unless \
           this flag is given, so the default run's wall-clock is \
           unaffected.")

let metrics_path_arg =
  Arg.(
    value
    & opt string "BENCH_metrics.json"
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Where to write the telemetry counter registry (always \
           written; the counters are always-on).")

let events_path_arg =
  Arg.(
    value
    & opt string "BENCH_events.jsonl"
    & info [ "events" ] ~docv:"PATH"
        ~doc:
          "Where to write the rsti-events/1 security-event log (always \
           written; populated by the $(b,detection-latency) section, a \
           header-only document otherwise). One compact JSON object per \
           line, lexicographically sorted — byte-identical at any \
           $(b,--jobs).")

let sections_arg =
  Arg.(
    value
    & pos_all string []
    & info [] ~docv:"SECTION"
        ~doc:
          "Sections to run (default: all). $(b,list) prints the section \
           names and exits.")

let main () json_path trace_path metrics_path events_path requested =
  if trace_path <> None then Rsti_observe.Observe.set_enabled true;
  if requested = [ "list" ] then begin
    List.iter (fun (name, _, _) -> print_endline name) sections;
    exit 0
  end;
  (match
     List.filter (fun s -> not (List.exists (fun (n, _, _) -> n = s) sections)) requested
   with
  | [] -> ()
  | unknown ->
      Printf.eprintf "unknown section(s): %s\n" (String.concat " " unknown);
      exit 2);
  let want name = requested = [] || List.mem name requested in
  let t_start = Unix.gettimeofday () in
  let timed = ref [] in
  List.iter
    (fun (name, title, f) ->
      if want name then begin
        section title;
        let t0 = Unix.gettimeofday () in
        Rsti_observe.Observe.Span.with_ ("bench." ^ name) f;
        timed := (name, Unix.gettimeofday () -. t0) :: !timed
      end)
    sections;
  let wall_clock = Unix.gettimeofday () -. t_start in
  let jobs = Rsti_engine_cli.resolved_jobs () in
  let oc = open_out json_path in
  output_string oc (J.to_string (json_summary ~jobs ~wall_clock ~timed:!timed));
  output_char oc '\n';
  close_out oc;
  Option.iter Rsti_engine_cli.write_trace trace_path;
  Rsti_engine_cli.write_metrics metrics_path;
  Rsti_engine_cli.write_events events_path;
  Printf.printf "\n[bench] %d section(s) in %.2f s at %d job(s); summary: %s\n"
    (List.length !timed) wall_clock jobs json_path

let () =
  let doc = "RSTI paper-reproduction benchmark harness" in
  let info = Cmd.info "bench" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const main $ Rsti_engine_cli.setup_jobs_term $ json_path_arg
            $ trace_path_arg $ metrics_path_arg $ events_path_arg
            $ sections_arg)))

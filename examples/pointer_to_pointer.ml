(* The paper's Figure 7: the pointer-to-pointer mechanism.

   When a T** is cast to a universal type and passed as an argument, the
   original type is statically lost. RSTI stores an 8-bit Compact
   Equivalent (CE) tag in the pointer's top byte (via ARM Top-Byte-Ignore)
   that indexes a read-only table of Full Equivalents (FE) — so the callee
   can still authenticate under the original type's modifier.

   Run with: dune exec examples/pointer_to_pointer.exe *)

module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Pipeline = Rsti_engine.Pipeline

let source =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);

struct node { long key; struct node* next; };

/* foo1 keeps the type: no pp mechanism needed. */
void foo1(struct node** pp1) {
  printf("foo1 sees key %ld\n", (*pp1)->key);
}

/* foo2 receives the double pointer type-erased: the pp mechanism must
   recover 'struct node**' from the CE tag. */
void foo2(void** pp2) {
  void* inner = *pp2;
  if (inner) { printf("foo2 got the object back\n"); }
}

int main(void) {
  struct node* p = (struct node*) malloc(sizeof(struct node));
  p->key = 41;
  foo1(&p);
  foo2((void**) &p);
  printf("done, key=%ld\n", p->key);
  return 0;
}
|}

let () =
  print_endline "Pointer-to-pointer handling (paper Figure 7 / section 4.7.7)\n";
  let a = Pipeline.analyze (Pipeline.compile (Pipeline.source ~file:"pp.c" source)) in
  let anal = Pipeline.analysis a in
  let census = Rsti_sti.Analysis.pp_census anal in
  Printf.printf "double-pointer sites: %d;  type-loss sites needing CE/FE: %d\n"
    census.pp_total_sites
    (List.length census.pp_special);
  List.iter
    (fun (func, ty) ->
      Printf.printf "  in %s: original type %s erased at a call boundary\n" func
        (Rsti_minic.Ctype.to_string ty))
    census.pp_special;
  let ce = Rsti_sti.Analysis.ce_table anal in
  print_endline "\nCE -> FE table (written into read-only memory):";
  List.iter
    (fun (ty, ce, fe) ->
      Printf.printf "  CE %3d -> FE %-16s (modifier 0x%Lx)\n" ce
        (Rsti_minic.Ctype.to_string ty)
        fe)
    ce;
  print_newline ();
  List.iter
    (fun mech ->
      let o = Pipeline.run (Pipeline.instrument mech a) in
      Printf.printf "--- %s ---\n%s" (RT.mechanism_to_string mech) o.Interp.output;
      (match o.Interp.status with
      | Interp.Exited n -> Printf.printf "exit %Ld;" n
      | Interp.Trapped tr -> Printf.printf "TRAP %s;" (Interp.trap_to_string tr));
      Printf.printf " pp library calls executed: %d\n\n" o.counts.pp_calls)
    RT.all_mechanisms;
  print_endline
    "foo1 (typed double pointer) needs no pp handling; foo2's argument is\n\
     pp_add/pp_sign/pp_add_tbi'd at the call site and pp_auth'd in the\n\
     callee — the rare case the census counts (25 of 7,489 sites in the\n\
     paper's SPEC 2006 analysis)."

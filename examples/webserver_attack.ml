(* The paper's Figure 2 motivating example, end to end: the GHTTPD
   data-oriented attack, narrated. An attacker corrupts a *data* pointer
   (no control data touched) to smuggle a crafted URL past the "/.."
   validation and reach system().

   Run with: dune exec examples/webserver_attack.exe *)

module S = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp

let narrate label (r : S.run_result) =
  Printf.printf "--- %s ---\n" label;
  List.iter
    (fun ev ->
      match ev with
      | Interp.Ev_attack msg -> Printf.printf "  [attacker] %s\n" msg
      | Interp.Ev_extern ("system", args) ->
          Printf.printf "  [!] system() reached with arg 0x%Lx\n"
            (match args with a :: _ -> a | [] -> 0L)
      | Interp.Ev_auth_fail { func; modifier; ptr } ->
          Printf.printf
            "  [PA] authentication FAILED in %s (modifier 0x%Lx, pointer 0x%Lx)\n"
            func modifier ptr
      | Interp.Ev_output s -> Printf.printf "  [out] %s" s
      | Interp.Ev_call _ | Interp.Ev_extern _ -> ())
    r.S.outcome.Interp.events;
  (match r.S.outcome.Interp.status with
  | Interp.Exited n -> Printf.printf "  program exited with %Ld\n" n
  | Interp.Trapped tr -> Printf.printf "  program TRAPPED: %s\n" (Interp.trap_to_string tr));
  Printf.printf "  verdict: %s\n\n" (S.verdict_to_string r.S.verdict)

let () =
  let sc = Rsti_attacks.Catalog.ghttpd in
  print_endline "GHTTPD data-oriented attack (paper Figure 2)\n";
  print_endline "Victim code under attack:";
  print_endline sc.S.program;
  narrate "no defense" (S.run_baseline sc);
  List.iter
    (fun mech -> narrate (RT.mechanism_to_string mech) (S.run sc mech))
    RT.all_mechanisms;
  print_endline
    "The corrupted req->ptr is a plain char* data pointer: classic CFI\n\
     never sees this attack. RSTI signs it on store with the RSTI-type of\n\
     struct request::ptr; the attacker's raw overwrite carries no valid\n\
     PAC and the next authenticated load traps."

/* lint_demo.c — a small program that trips most of the stilint rules.
   Run it with:

     rstic lint examples/lint_demo.c
     rstic lint examples/lint_demo.c --format=json

   Expected findings: a type-erasing cast merging the int-pointer and
   long-pointer STC classes, a store through a const-qualified slot, a
   double-pointer
   site that loses its pointee type, an xpac-stripped external call,
   and substitution windows over the same-typed pointer globals. */

extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern void qsort(void* base, long n, long width, void* cmp);

/* Two same-typed, same-scoped globals: one STWC equivalence class of
   size two — the substitution window the lint reports statically. */
int* alpha;
int* beta;

/* A const pointer slot: writing through it is a permission bug. */
const char* banner = "lint demo";

long* laundered;

void mix(void) {
  /* Type-erasing cast: int* and long* end up in one STC class. */
  laundered = (long*) alpha;
  printf("mixed %ld\n", *laundered);
}

void sort_ptrs(int** table, long n) {
  /* Double pointer passed to an external sink through void*: the
     pointee type is gone unless a CE covers the site. (Guarded so the
     demo still runs — the lint findings are static.) */
  if (n > 9000) {
    qsort((void*) table, n, 8, (void*) 0);
  }
  printf("table of %ld\n", n);
}

int main(void) {
  alpha = (int*) malloc(8);
  beta = (int*) malloc(8);
  *alpha = 41;
  *beta = 1;
  mix();
  int* table[2];
  table[0] = alpha;
  table[1] = beta;
  sort_ptrs(table, 2);
  /* Store through a permission-R slot: the sign here disagrees with
     the auth at every read of banner. */
  banner = "rebranded";
  printf("%s: sum %d\n", banner, *alpha + *beta);
  return 0;
}

(* Quickstart: the full RSTI pipeline on a small program.

   1. Compile MiniC to IR.
   2. Run the STI analysis (scope, type, permission per pointer).
   3. Instrument with RSTI-STWC.
   4. Execute — once clean, once while an attacker overwrites a function
      pointer on the heap.

   Run with: dune exec examples/quickstart.exe *)

module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Pipeline = Rsti_engine.Pipeline

let source =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);
extern int system(const char* cmd);

struct handler_table {
  long version;
  void (*on_request)(long id);
};

void handle_request(long id) {
  printf("handled request %ld\n", id);
}

struct handler_table* table;

void serve(long id) {
  table->on_request(id);
}

int main(void) {
  table = (struct handler_table*) malloc(sizeof(struct handler_table));
  table->version = 1;
  table->on_request = handle_request;
  serve(100);
  serve(101);
  return 0;
}
|}

let hijack =
  {
    Interp.trigger = Interp.On_call ("serve", 2);
    action =
      (fun intr ->
        intr.note "attacker: table->on_request := &system";
        match intr.heap_allocs () with
        | (obj, _) :: _ -> intr.write_word (Int64.add obj 8L) (intr.func_addr "system")
        | [] -> ());
  }

(* the staged pipeline end to end; repeat runs hit the artifact cache *)
let analyzed () =
  Pipeline.analyze (Pipeline.compile (Pipeline.source ~file:"quickstart.c" source))

let run ~mech ~attacks label =
  let o = Pipeline.run ~attacks (Pipeline.instrument mech (analyzed ())) in
  Printf.printf "--- %s ---\n%s" label o.Interp.output;
  (match o.Interp.status with
  | Interp.Exited code -> Printf.printf "exited with %Ld\n" code
  | Interp.Trapped tr -> Printf.printf "TRAPPED: %s\n" (Interp.trap_to_string tr));
  Printf.printf "pac signs/auths executed: %d/%d\n\n" o.counts.pac_signs
    o.counts.pac_auths;
  o

let () =
  print_endline "RSTI quickstart: protecting a function-pointer table\n";
  (* The analysis view: what STI recovered as the programmer's intent. *)
  let anal = Pipeline.analysis (analyzed ()) in
  print_endline "STI view of the pointers in this program:";
  List.iter
    (fun (si : Rsti_sti.Analysis.slot_info) ->
      Printf.printf "  %-24s %s\n"
        (Rsti_ir.Ir.slot_to_string si.Rsti_sti.Analysis.slot)
        (RT.to_string (Rsti_sti.Analysis.rsti_of anal RT.Stwc si.slot)))
    (Rsti_sti.Analysis.pointer_vars anal);
  print_newline ();
  let _clean = run ~mech:RT.Stwc ~attacks:[] "clean run under RSTI-STWC" in
  let _owned = run ~mech:RT.Nop ~attacks:[ hijack ] "attacked run, NO defense" in
  let defended = run ~mech:RT.Stwc ~attacks:[ hijack ] "attacked run under RSTI-STWC" in
  if Interp.detected defended then
    print_endline "=> RSTI detected the hijack: the forged pointer had no valid PAC."
  else print_endline "=> unexpected: attack not detected"

(* Equivalence-class survey: how the RSTI-type space grows with program
   size (the trend behind the paper's Table 3), measured over generated
   programs of increasing size.

   Run with: dune exec examples/equivalence_survey.exe *)

module Analysis = Rsti_sti.Analysis
module Generator = Rsti_workloads.Generator
module Tab = Rsti_util.Tab

let survey_point ~structs ~funcs seed =
  let config =
    {
      Generator.default with
      n_structs = structs;
      n_funcs = funcs;
      n_globals = max 2 (structs / 2);
      cast_bias = 0.3;
      emit_main = false;
      prefix = "p_";
      pp_typed_rate = 0.2;
    }
  in
  let src = Generator.generate ~config ~seed () in
  let anal =
    Rsti_engine.Pipeline.(analysis (analyze (compile (source ~file:"survey.c" src))))
  in
  (Analysis.stats anal, Analysis.pp_census anal)

let () =
  print_endline "How the RSTI-type space scales with program size";
  print_endline "(generated programs; the paper's Table 3 trend)\n";
  let rows =
    List.map
      (fun (structs, funcs) ->
        let s, census = survey_point ~structs ~funcs 42L in
        [
          Printf.sprintf "%d/%d" structs funcs;
          string_of_int s.Analysis.nt;
          string_of_int s.rt_stc;
          string_of_int s.rt_stwc;
          string_of_int s.nv;
          string_of_int s.largest_ecv_stwc;
          string_of_int s.largest_ect_stc;
          string_of_int census.Analysis.pp_total_sites;
        ])
      [ (2, 4); (5, 10); (10, 25); (25, 60); (50, 120); (100, 250); (200, 500) ]
  in
  print_endline
    (Tab.render
       ~header:
         [ "structs/funcs"; "NT"; "RT/STC"; "RT/STWC"; "NV"; "max ECV"; "max ECT";
           "pp sites" ]
       rows);
  print_endline
    "\nObservations (matching the paper): RT grows faster than NT because\n\
     scope and permission split basic types into multiple RSTI-types;\n\
     STC's merging keeps RT(STC) below RT(STWC); the largest equivalence\n\
     class grows slowly, so pointer-substitution budgets stay small; and\n\
     double-pointer sites are plentiful while type-losing ones (needing\n\
     the CE/FE mechanism) stay rare."

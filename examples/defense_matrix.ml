(* The full defense matrix: every attack scenario in the repository
   (Table 1, the Table 2 substitutions, the memory-safety scenarios)
   against every defense (none, signature-CFI, the three RSTI
   mechanisms, PARTS).

   Run with: dune exec examples/defense_matrix.exe *)

module S = Rsti_attacks.Scenario
module RT = Rsti_sti.Rsti_type
module Tab = Rsti_util.Tab

let cell = function
  | S.Attack_succeeded -> "owned"
  | S.Detected -> "STOPPED"
  | S.Attack_failed -> "fizzled"

let row sc =
  let base = (S.run_baseline sc).S.verdict in
  let cfi = (S.run_cfi sc).S.verdict in
  let rsti = List.map (fun m -> cell (S.run sc m).S.verdict) RT.all_mechanisms in
  let parts = (S.run sc RT.Parts).S.verdict in
  [ sc.S.id; cell base; cell cfi ] @ rsti @ [ cell parts ]

let () =
  let scenarios =
    Rsti_attacks.Catalog.all @ Rsti_attacks.Substitution.all
    @ Rsti_attacks.Memory_safety.all
  in
  print_endline "Attack x defense matrix (20 scenarios x 6 defenses)\n";
  print_endline
    (Tab.render
       ~header:[ "scenario"; "none"; "sig-CFI"; "STWC"; "STC"; "STL"; "PARTS" ]
       (List.map row scenarios));
  print_endline
    "\nReading guide: 'owned' = the attacker reached their goal; 'STOPPED'\n\
     = the defense detected the corruption. Signature-CFI never sees\n\
     data-oriented attacks; PARTS (type-only modifiers) misses scope and\n\
     permission violations; STL stops even the in-class replays that\n\
     STWC/STC accept — the paper's Tables 1 and 2 in one view."

(* The paper's Figure 5 / Figure 8 walkthrough: how the three RSTI
   mechanisms assign RSTI-types to the same code, and how STC's
   compatible-type merging differs from STWC.

   Run with: dune exec examples/mechanisms.exe *)

module RT = Rsti_sti.Rsti_type
module Analysis = Rsti_sti.Analysis
module Pipeline = Rsti_engine.Pipeline

(* Figure 5's example: a ctx object laundered through void*, plus a const
   void* bystander. *)
let fig5 =
  {|
extern void* malloc(long n);
extern int printf(const char *fmt, ...);

typedef struct { void (*send_file)(long x); } ctx;

void do_send(long x) { printf("sent %ld\n", x); }

void foo(ctx* c) { c->send_file(1); }
void bar(ctx* c) { c->send_file(2); }

void foo2(void* v_ctx) {
  foo((ctx*) v_ctx);
  bar((ctx*) v_ctx);
}

int main(void) {
  ctx* c = (ctx*) malloc(sizeof(ctx));
  c->send_file = do_send;
  const void* v_const = malloc(sizeof(long));
  foo2((void*) c);
  return v_const ? 0 : 1;
}
|}

(* Figure 8's example: three pointers, one cast. *)
let fig8 =
  {|
extern int printf(const char *fmt, ...);
void* p1_slot;
void* p2_slot;
long* p3_slot;
long cell = 7;
int main(void) {
  p3_slot = &cell;
  p1_slot = (void*) p3_slot;
  p2_slot = p1_slot;
  printf("%ld\n", *p3_slot);
  return 0;
}
|}

let show_types label source =
  Printf.printf "=== %s ===\n\n" label;
  let anal =
    Pipeline.analysis
      (Pipeline.analyze (Pipeline.compile (Pipeline.source ~file:"fig.c" source)))
  in
  let vars = Analysis.pointer_vars anal in
  List.iter
    (fun mech ->
      Printf.printf "%s RSTI-types:\n" (RT.mechanism_to_string mech);
      (* group variables by RSTI-type, like the tables under Figure 5 *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (si : Analysis.slot_info) ->
          let rt = RT.to_string (Analysis.rsti_of anal mech si.slot) in
          let members = try Hashtbl.find tbl rt with Not_found -> [] in
          Hashtbl.replace tbl rt (Rsti_ir.Ir.slot_to_string si.slot :: members))
        vars;
      let idx = ref 0 in
      Hashtbl.iter
        (fun rt members ->
          incr idx;
          Printf.printf "  M%d: %-52s  <- %s\n" !idx rt
            (String.concat ", " (List.rev members)))
        tbl;
      print_newline ())
    [ RT.Stwc; RT.Stc ];
  let casts = Analysis.casts anal in
  Printf.printf "casts in the program: %s\n\n"
    (String.concat "; "
       (List.map (fun (f, a, b) -> Printf.sprintf "%s: %s -> %s" f a b) casts))

let show_instrumentation source =
  Printf.printf "=== instrumentation counts for the Figure 5 program ===\n\n";
  let a = Pipeline.analyze (Pipeline.compile (Pipeline.source ~file:"fig5.c" source)) in
  List.iter
    (fun mech ->
      let c = Pipeline.counts (Pipeline.instrument mech a) in
      Printf.printf "  %-10s signs=%d auths=%d cast-resigns=%d strips=%d\n"
        (RT.mechanism_to_string mech)
        c.signs c.auths c.resigns c.strips)
    RT.all_mechanisms;
  print_newline ()

let () =
  show_types "Figure 5: scope-type assignment" fig5;
  show_types "Figure 8: merging across a cast" fig8;
  show_instrumentation fig5;
  print_endline
    "Note how STC folds {ctx*, void*} into one RSTI-type (no cast re-signing\n\
     needed) while STWC keeps them apart, and how the const void* keeps its\n\
     own read-only RSTI-type under both — exactly the tables under Figure 5."

(* rstic — the RSTI "compiler driver" command-line tool.

   All compilation goes through the engine's staged pipeline
   (lib/engine): source -> compiled -> analyzed -> instrumented -> run,
   with content-keyed artifact caching. run/analyze/lint/report share
   the engine's --jobs flag; lint fans a directory's files out over the
   domain pool.

   Subcommands:
     run       compile a MiniC file, instrument it, execute it
               (--elide=off|syntactic|points-to selects proof-based
               instrumentation elision; --validate runs the
               PAC-typestate translation validator on the result;
               --profile prints an exact hot-site cycle table;
               --trace/--metrics dump telemetry JSON)
     emit-ir   print the (optionally instrumented) IR
     analyze   print the STI analysis: pointer variables, RSTI-types,
               equivalence-class statistics, pointer-to-pointer census
               (--format=json for machine-readable output; --points-to
               adds the Andersen confinement verdicts; --attack-surface
               switches to the substitution-attack-surface analysis:
               modifier equivalence classes and the gadget graph)
     lint      run the whole-program static STI checker over a file or
               a directory of MiniC sources (--format=text|json|sarif);
               --attack-surface adds the modifier-collision and
               feasible-substitution rules; exits 1 when any
               error-severity finding is reported
     attacks   run the paper's attack catalog
     report    print one of the paper-reproduction reports *)

open Cmdliner

module RT = Rsti_sti.Rsti_type
module Interp = Rsti_machine.Interp
module Pipeline = Rsti_engine.Pipeline
module Scheduler = Rsti_engine.Scheduler
module Elide = Rsti_staticcheck.Elide

let mech_conv =
  let parse = function
    | "stwc" -> Ok RT.Stwc
    | "stc" -> Ok RT.Stc
    | "stl" -> Ok RT.Stl
    | "parts" -> Ok RT.Parts
    | "none" -> Ok RT.Nop
    | s -> Error (`Msg (Printf.sprintf "unknown mechanism %S (stwc|stc|stl|parts|none)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | RT.Stwc -> "stwc"
      | RT.Stc -> "stc"
      | RT.Stl -> "stl"
      | RT.Parts -> "parts"
      | RT.Nop -> "none")
  in
  Arg.conv (parse, print)

let mech_arg =
  Arg.(
    value
    & opt mech_conv RT.Stwc
    & info [ "m"; "mechanism" ] ~docv:"MECH"
        ~doc:"RSTI mechanism: stwc (default), stc, stl, parts, none.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_frontend path f =
  try f (read_file path)
  with
  | Rsti_minic.Lexer.Error (msg, loc) ->
      Printf.eprintf "%s: lexical error: %s\n" (Rsti_minic.Loc.to_string loc) msg;
      exit 1
  | Rsti_minic.Parser.Error (msg, loc) ->
      Printf.eprintf "%s: syntax error: %s\n" (Rsti_minic.Loc.to_string loc) msg;
      exit 1
  | Rsti_minic.Typecheck.Error (msg, loc) ->
      Printf.eprintf "%s: type error: %s\n" (Rsti_minic.Loc.to_string loc) msg;
      exit 1

(* source -> analyzed -> instrumented(mech), frontend errors reported *)
let analyzed_of_path ?(config = Pipeline.default) path =
  with_frontend path (fun src ->
      Pipeline.analyze ~config
        (Pipeline.compile ~config (Pipeline.source ~file:path src)))

let elide_conv =
  let parse s =
    match Elide.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown elision mode %S (off|syntactic|points-to|context[:K])"
               s))
  in
  let print fmt m = Format.pp_print_string fmt (Elide.mode_to_string m) in
  Arg.conv (parse, print)

let compile_instrumented ?(elision = Elide.Off) ?(validate = false) path mech =
  let config = { Pipeline.default with Pipeline.elision; validate } in
  let a = analyzed_of_path ~config path in
  try (a, Pipeline.instrument ~config mech a)
  with Pipeline.Validation_failed report ->
    Printf.eprintf "rstic: translation validation failed:\n%s"
      (Rsti_dataflow.Validate.report_to_string report);
    exit 1

(* ------------------------------------------------------------------ *)

let run_cmd =
  let doc = "Compile, instrument, and execute a MiniC program." in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print cycle and PAC statistics.")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attribute interpreter cycles and PAC charges to (function, \
             line) sites and print a hot-site table after execution. \
             Exact, not sampled; the profiled outcome is memoized \
             separately from the unprofiled one.")
  in
  let elide_flag =
    Arg.(
      value
      & opt elide_conv Elide.Off
      & info [ "elide" ] ~docv:"MODE"
          ~doc:
            "Elide sign/auth pairs the static checker proves safe (see \
             $(b,rstic lint)): $(b,off) (default), $(b,syntactic) \
             (flow-component proof), $(b,points-to) (adds Andersen \
             confinement) or $(b,context:K) (k-limited call-site-cloned \
             confinement plus the scope-escape checker; bare \
             $(b,context) means K=2); no-op under parts/none.")
  in
  let validate_flag =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check the instrumented module with the PAC-typestate \
             translation validator before running; exit 1 on any issue.")
  in
  let run_pt_flag =
    Rsti_engine_cli.points_to_term ~bare:(Rsti_dataflow.Points_to.Cloning 2)
      ~doc:
        "Shorthand selecting the points-to-backed elision precision: \
         $(b,insensitive) is $(b,--elide=points-to), $(b,cloning:K) is \
         $(b,--elide=context:K) (the bare flag means $(b,cloning:2)). \
         Takes precedence over $(b,--elide)."
      ()
  in
  let flight_flag =
    Arg.(
      value
      & opt (some int) None
      & info [ "flight" ] ~docv:"N"
          ~doc:
            "PAC flight-recorder ring capacity: keep the last $(docv) \
             sign/auth/strip operations per run and attach a structured \
             incident record (failing site, expected vs observed signer, \
             detection latency, last-N window) to any authentication \
             failure. Defaults to 16 when $(b,--events) is given, off \
             otherwise.")
  in
  let action () obs events file mech stats elision validate profile pt_mode
      flight =
    let elision =
      match pt_mode with
      | None -> elision
      | Some Rsti_dataflow.Points_to.Insensitive -> Elide.With_points_to
      | Some (Rsti_dataflow.Points_to.Cloning k) -> Elide.With_context k
    in
    let flight =
      match flight with
      | Some n -> n
      | None -> if events <> None then Rsti_attacks.Incident.default_flight else 0
    in
    let _, inst = compile_instrumented ~elision ~validate file mech in
    let o = Pipeline.run ~profile ~flight inst in
    let r = Pipeline.result inst in
    print_string o.Interp.output;
    if profile then print_string (Interp.profile_report o);
    if stats then begin
      Printf.printf "--- %s%s ---\n"
        (RT.mechanism_to_string mech)
        (match elision with
        | Elide.Off -> ""
        | m -> "+elide:" ^ Elide.mode_to_string m);
      Printf.printf "static sites: signs=%d auths=%d resigns=%d elided=%d\n"
        r.counts.signs r.counts.auths r.counts.resigns r.counts.elided;
      Printf.printf "cycles: %d  instructions: %d\n" o.cycles o.counts.instrs;
      Printf.printf "loads: %d  stores: %d\n" o.counts.loads o.counts.stores;
      Printf.printf "pac signs: %d  auths: %d  strips: %d  pp calls: %d\n"
        o.counts.pac_signs o.counts.pac_auths o.counts.pac_strips
        o.counts.pp_calls;
      let top profile =
        profile |> List.filteri (fun i _ -> i < 8)
        |> List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c)
        |> String.concat "  "
      in
      Printf.printf "hot functions: %s\n" (top o.call_profile);
      Printf.printf "libc calls:    %s\n" (top o.extern_profile)
    end;
    (match events with
    | None -> ()
    | Some path ->
        let module Observe = Rsti_observe.Observe in
        List.iter
          (fun inc ->
            Observe.Events.emit ~cat:"incident" ~name:(Filename.basename file)
              (Rsti_attacks.Incident.incident_fields inc))
          o.Interp.incidents;
        Observe.Events.emit ~cat:"run" ~name:(Filename.basename file)
          [
            ("mech", Observe.Json.Str (RT.mechanism_to_string mech));
            ("cycles", Observe.Json.Int o.Interp.cycles);
            ("instrs", Observe.Json.Int o.Interp.counts.Interp.instrs);
            ("pac_signs", Observe.Json.Int o.Interp.counts.Interp.pac_signs);
            ("pac_auths", Observe.Json.Int o.Interp.counts.Interp.pac_auths);
            ( "incidents",
              Observe.Json.Int (List.length o.Interp.incidents) );
            ( "status",
              Observe.Json.Str
                (match o.Interp.status with
                | Interp.Exited c -> Printf.sprintf "exit:%Ld" c
                | Interp.Trapped tr -> "trap:" ^ Interp.trap_to_string tr) );
          ];
        Rsti_engine_cli.write_events path);
    Rsti_engine_cli.finish_observe obs;
    match o.Interp.status with
    | Interp.Exited code -> exit (Int64.to_int code land 0xFF)
    | Interp.Trapped tr ->
        Printf.eprintf "trap: %s\n" (Interp.trap_to_string tr);
        exit 139
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const action $ Rsti_engine_cli.setup_jobs_term
      $ Rsti_engine_cli.observe_term $ Rsti_engine_cli.events_term $ file_arg
      $ mech_arg $ stats $ elide_flag $ validate_flag $ profile_flag
      $ run_pt_flag $ flight_flag)

let emit_ir_cmd =
  let doc = "Print the (optionally instrumented) IR of a MiniC program." in
  let action file mech =
    let _, inst = compile_instrumented file mech in
    print_string (Rsti_ir.Ir.modul_to_string (Pipeline.instrumented_ir inst))
  in
  Cmd.v (Cmd.info "emit-ir" ~doc) Term.(const action $ file_arg $ mech_arg)

(* attack-surface text view: per-mechanism metrics plus the non-singleton
   classes (the substitution gadget classes), members by name *)
let print_attack_surface file (results : Rsti_dataflow.Equiv.result list) =
  let module Equiv = Rsti_dataflow.Equiv in
  Printf.printf "Substitution attack surface: %s\n" file;
  List.iter
    (fun (r : Equiv.result) ->
      let m = r.Equiv.r_metrics in
      Printf.printf
        "\n%s: %d slots in %d classes (%d singletons, largest %d); \
         replay edges %d, feasible %d\n"
        (RT.mechanism_to_string r.Equiv.r_mech)
        m.Equiv.m_candidates m.Equiv.m_classes m.Equiv.m_singletons
        m.Equiv.m_largest m.Equiv.m_replay_edges m.Equiv.m_feasible_edges;
      let collisions =
        List.filter
          (fun (c : Equiv.cls) -> List.length c.Equiv.c_members > 1)
          r.Equiv.r_classes
      in
      let shown = List.filteri (fun i _ -> i < 8) collisions in
      List.iter
        (fun (c : Equiv.cls) ->
          Printf.printf "  modifier %016Lx [%s] %s: %s\n" c.Equiv.c_modifier
            (Rsti_pa.Key.which_to_string c.Equiv.c_pa_key)
            c.Equiv.c_label
            (String.concat ", "
               (List.map
                  (fun (mb : Equiv.member) ->
                    Rsti_ir.Ir.slot_to_string mb.Equiv.mb_info.Rsti_sti.Analysis.slot)
                  c.Equiv.c_members)))
        shown;
      if List.length collisions > List.length shown then
        Printf.printf "  ... %d more collision classes\n"
          (List.length collisions - List.length shown))
    results

let analyze_cmd =
  let doc = "Print the STI analysis of a MiniC program." in
  let pt_flag =
    Rsti_engine_cli.points_to_term
      ~doc:
        "Run the Andersen points-to analysis at MODE ($(b,insensitive), \
         the bare-flag default, or $(b,cloning:K) for k-limited \
         call-site cloning; bare $(b,cloning) means K=2) and report each \
         pointer variable's confinement verdict and the matching elision \
         classification alongside the syntactic one. A cloning mode also \
         runs the scope-escape checker. With $(b,--attack-surface), \
         additionally refines gadget feasibility at MODE."
      ()
  in
  let surface_flag =
    Arg.(
      value & flag
      & info [ "attack-surface" ]
          ~doc:
            "Print the static substitution-attack-surface analysis \
             instead: per mechanism (stwc/stc/stl/parts), the modifier \
             equivalence classes, gadget metrics, and (with \
             $(b,--format=json)) the full substitution-gadget graph; \
             $(b,--format=sarif) carries the modifier-collision and \
             feasible-substitution findings. $(b,--points-to) refines \
             feasibility; without it the unconfined attacker model is \
             used.")
  in
  let analyze_format_arg =
    let fmt_conv =
      let parse = function
        | "text" -> Ok `Text
        | "json" -> Ok `Json
        | "sarif" -> Ok `Sarif
        | s ->
            Error
              (`Msg (Printf.sprintf "unknown format %S (text|json|sarif)" s))
      in
      let print fmt f =
        Format.pp_print_string fmt
          (match f with `Text -> "text" | `Json -> "json" | `Sarif -> "sarif")
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt fmt_conv `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: text (default), json, or sarif (a SARIF \
             2.1.0 document carrying the dataflow findings — \
             scope-escape and stale-frame-deref — at the requested \
             points-to mode).")
  in
  let action () file format pt_mode surface =
    let a = analyzed_of_path file in
    let m = Pipeline.analyzed_ir a and anal = Pipeline.analysis a in
    let comp = Pipeline.compiled_of_analyzed a in
    if surface then begin
      let results =
        List.map
          (fun mech -> Pipeline.attack_surface ?mode:pt_mode mech a)
          Rsti_staticcheck.Attack_surface.mechanisms
      in
      match format with
      | `Text -> print_attack_surface file results
      | `Json ->
          print_string
            (Rsti_staticcheck.Json.to_string
               (Rsti_staticcheck.Attack_surface.graph_json m results));
          print_newline ()
      | `Sarif ->
          print_string
            (Rsti_staticcheck.Lint.render_sarif
               [ (file, Rsti_staticcheck.Attack_surface.findings m results) ])
    end
    else
    (match format with
    | `Sarif ->
        (* the SARIF view is the dataflow findings; default to the
           insensitive solution when no mode was requested *)
        let mode =
          Option.value pt_mode ~default:Rsti_dataflow.Points_to.Insensitive
        in
        let scope = Pipeline.scope_escape ~mode comp in
        print_string
          (Rsti_staticcheck.Lint.render_sarif
             [ (file, Rsti_staticcheck.Lint.dataflow_findings scope) ])
    | (`Text | `Json) as format ->
    let pt_elide =
      match pt_mode with
      | None -> None
      | Some mode ->
          let pt = Pipeline.points_to ~mode comp in
          let scope =
            match mode with
            | Rsti_dataflow.Points_to.Insensitive -> None
            | Rsti_dataflow.Points_to.Cloning _ ->
                Some (Pipeline.scope_escape ~mode comp)
          in
          Some (pt, Elide.analyze ~points_to:pt ?scope anal m)
    in
    let vars = Rsti_sti.Analysis.pointer_vars anal in
    let s = Rsti_sti.Analysis.stats anal in
    let c = Rsti_sti.Analysis.pp_census anal in
    match format with
    | `Text ->
        Printf.printf "Pointer variables and their RSTI-types (STWC view):\n\n";
        List.iter
          (fun (si : Rsti_sti.Analysis.slot_info) ->
            let rt = Rsti_sti.Analysis.rsti_of anal RT.Stwc si.slot in
            Printf.printf "  %-28s %s%s\n"
              (Rsti_ir.Ir.slot_to_string si.slot)
              (RT.to_string rt)
              (match pt_elide with
              | None -> ""
              | Some (_, e) ->
                  Printf.sprintf "  [elide: %s]"
                    (Elide.verdict_to_string (Elide.verdict e si.slot))))
          vars;
        (match pt_elide with
        | None -> ()
        | Some (pt, _) ->
            let st = Rsti_dataflow.Points_to.stats pt in
            Printf.printf
              "\npoints-to: %d nodes, %d objects (%d heap, %d escaped), \
               %d iterations\n"
              st.Rsti_dataflow.Points_to.nodes st.Rsti_dataflow.Points_to.objects
              st.Rsti_dataflow.Points_to.heap_objects
              st.Rsti_dataflow.Points_to.escaped_objects
              st.Rsti_dataflow.Points_to.iterations);
        Printf.printf
          "\nNT=%d RT(STC)=%d RT(STWC)=%d NV=%d  largest ECV: STC=%d STWC=%d  \
           largest ECT: STC=%d STWC=%d\n"
          s.nt s.rt_stc s.rt_stwc s.nv s.largest_ecv_stc s.largest_ecv_stwc
          s.largest_ect_stc s.largest_ect_stwc;
        Printf.printf "pointer-to-pointer sites: %d (type-loss: %d)\n"
          c.pp_total_sites
          (List.length c.pp_special)
    | `Json ->
        let module J = Rsti_staticcheck.Json in
        let e = Rsti_staticcheck.Elide.analyze anal m in
        let var si =
          let slot = si.Rsti_sti.Analysis.slot in
          J.Obj
            ([
               ("slot", J.Str (Rsti_ir.Ir.slot_to_string slot));
               ("rsti_stwc", J.Str (RT.to_string (Rsti_sti.Analysis.rsti_of anal RT.Stwc slot)));
               ("rsti_stc", J.Str (RT.to_string (Rsti_sti.Analysis.rsti_of anal RT.Stc slot)));
               ("elision", J.Str (Rsti_staticcheck.Elide.verdict_to_string
                                    (Rsti_staticcheck.Elide.verdict e slot)));
             ]
            @
            match pt_elide with
            | None -> []
            | Some (_, e_pt) ->
                [
                  ( "elision_points_to",
                    J.Str
                      (Elide.verdict_to_string (Elide.verdict e_pt slot)) );
                ])
        in
        let j =
          J.Obj
            ([
              ("file", J.Str file);
              ("pointer_vars", J.List (List.map var vars));
              ( "stats",
                J.Obj
                  [
                    ("nt", J.Int s.nt);
                    ("rt_stc", J.Int s.rt_stc);
                    ("rt_stwc", J.Int s.rt_stwc);
                    ("nv", J.Int s.nv);
                    ("largest_ecv_stc", J.Int s.largest_ecv_stc);
                    ("largest_ecv_stwc", J.Int s.largest_ecv_stwc);
                    ("largest_ect_stc", J.Int s.largest_ect_stc);
                    ("largest_ect_stwc", J.Int s.largest_ect_stwc);
                  ] );
              ( "pp_census",
                J.Obj
                  [
                    ("total_sites", J.Int c.pp_total_sites);
                    ("type_loss_sites", J.Int (List.length c.pp_special));
                  ] );
            ]
            @
            (match pt_elide with
            | None -> []
            | Some (pt, _) ->
                let st = Rsti_dataflow.Points_to.stats pt in
                [
                  ( "points_to",
                    J.Obj
                      [
                        ("nodes", J.Int st.Rsti_dataflow.Points_to.nodes);
                        ("objects", J.Int st.Rsti_dataflow.Points_to.objects);
                        ( "heap_objects",
                          J.Int st.Rsti_dataflow.Points_to.heap_objects );
                        ( "escaped_objects",
                          J.Int st.Rsti_dataflow.Points_to.escaped_objects );
                        ( "iterations",
                          J.Int st.Rsti_dataflow.Points_to.iterations );
                      ] );
                ]))
        in
        print_string (J.to_string j);
        print_newline ())
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const action $ Rsti_engine_cli.setup_jobs_term $ file_arg
      $ analyze_format_arg $ pt_flag $ surface_flag)

let lint_cmd =
  let doc =
    "Run the whole-program static STI checker over MiniC sources. FILE may \
     be a single source file or a directory (linted recursively, *.c only). \
     Exit status is 1 when any error-severity finding is reported, 0 \
     otherwise (warnings and notes do not affect it)."
  in
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"MiniC source file or directory.")
  in
  let lint_format_arg =
    let fmt_conv =
      let parse = function
        | "text" -> Ok `Text
        | "json" -> Ok `Json
        | "sarif" -> Ok `Sarif
        | s ->
            Error
              (`Msg (Printf.sprintf "unknown format %S (text|json|sarif)" s))
      in
      let print fmt f =
        Format.pp_print_string fmt
          (match f with `Text -> "text" | `Json -> "json" | `Sarif -> "sarif")
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt fmt_conv `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: text (default), json (one report object per \
             file), or sarif (one SARIF 2.1.0 document covering every \
             linted file).")
  in
  let lint_pt_flag =
    Rsti_engine_cli.points_to_term ~bare:(Rsti_dataflow.Points_to.Cloning 2)
      ~doc:
        "Also run the points-to-backed dataflow rules \
         ($(b,scope-escape), $(b,stale-frame-deref)) at MODE \
         ($(b,insensitive) or $(b,cloning:K); the bare flag means \
         $(b,cloning:2)). With $(b,--attack-surface), also refines \
         gadget feasibility at MODE."
      ()
  in
  let lint_surface_flag =
    Arg.(
      value & flag
      & info [ "attack-surface" ]
          ~doc:
            "Also run the substitution-attack-surface rules: \
             $(b,modifier-collision) (warning: a modifier equivalence \
             class with two or more slots) and \
             $(b,feasible-substitution) (error: a gadget edge the \
             confined attacker can actually reach). Feasibility uses \
             $(b,--points-to) when given, the unconfined model \
             otherwise.")
  in
  let rec collect path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort compare
      |> List.concat_map (fun e -> collect (Filename.concat path e))
    else if Filename.check_suffix path ".c" then [ path ]
    else []
  in
  let action () target format pt_mode surface =
    if not (Sys.file_exists target) then begin
      Printf.eprintf "rstic lint: no such file or directory: %s\n" target;
      exit 2
    end;
    let files =
      if Sys.is_directory target then collect target else [ target ]
    in
    if files = [] then
      Printf.eprintf "rstic lint: no .c files under %s\n" target;
    (* fan the files out over the domain pool; collect findings in input
       order so output is identical for any job count *)
    let reports =
      Scheduler.map
        (fun file ->
          let a = analyzed_of_path file in
          let scope =
            Option.map
              (fun mode ->
                Pipeline.scope_escape ~mode (Pipeline.compiled_of_analyzed a))
              pt_mode
          in
          let attack_surface =
            if not surface then None
            else
              Some
                (List.map
                   (fun mech -> Pipeline.attack_surface ?mode:pt_mode mech a)
                   Rsti_staticcheck.Attack_surface.mechanisms)
          in
          let findings =
            Rsti_staticcheck.Lint.run ?scope ?attack_surface
              (Pipeline.analysis a)
              (Pipeline.analyzed_ir a)
          in
          (file, findings))
        files
    in
    (match format with
    | `Sarif -> print_string (Rsti_staticcheck.Lint.render_sarif reports)
    | (`Text | `Json) as fmt ->
        List.iter
          (fun (file, findings) ->
            print_string
              (match fmt with
              | `Text -> Rsti_staticcheck.Lint.render_text ~file findings
              | `Json -> Rsti_staticcheck.Lint.render_json ~file findings))
          reports);
    let errors =
      List.exists
        (fun (_, findings) ->
          List.exists
            (fun (f : Rsti_staticcheck.Finding.t) ->
              f.severity = Rsti_staticcheck.Finding.Error)
            findings)
        reports
    in
    if errors then exit 1
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const action $ Rsti_engine_cli.setup_jobs_term $ target_arg
      $ lint_format_arg $ lint_pt_flag $ lint_surface_flag)

let attacks_cmd =
  let doc = "Run the paper's attack catalog (Tables 1 and 2)." in
  let action () =
    print_endline (Rsti_report.Security.table1 ());
    print_endline (Rsti_report.Security.table2 ())
  in
  Cmd.v (Cmd.info "attacks" ~doc) Term.(const action $ const ())

let report_cmd =
  let doc = "Print a paper-reproduction report." in
  let which =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REPORT"
          ~doc:
            "One of: table1, table2, table3, fig9, fig10, pp-census, parts, \
             correlation, ablation-pac, ablation-merge, ablation-stl, \
             ablation-ce, elide, elide-precision, elide-precision-cs, \
             validate, attack-surface, incidents.")
  in
  let action () which =
    match which with
    | "table1" -> print_endline (Rsti_report.Security.table1 ())
    | "table2" -> print_endline (Rsti_report.Security.table2 ())
    | "table3" -> print_endline (Rsti_report.Figures.table3 ())
    | "fig9" -> print_endline (Rsti_report.Figures.fig9 (Rsti_report.Perf.collect ()))
    | "fig10" -> print_endline (Rsti_report.Figures.fig10 (Rsti_report.Perf.collect ()))
    | "pp-census" -> print_endline (Rsti_report.Figures.pp_census ())
    | "parts" -> print_endline (Rsti_report.Figures.parts_comparison ())
    | "correlation" ->
        print_endline (Rsti_report.Figures.correlation (Rsti_report.Perf.collect ()))
    | "ablation-pac" -> print_endline (Rsti_report.Ablation.pac_cost_sweep ())
    | "ablation-merge" -> print_endline (Rsti_report.Ablation.merge_effect ())
    | "ablation-stl" -> print_endline (Rsti_report.Ablation.stl_argument_cost ())
    | "ablation-ce" -> print_endline (Rsti_report.Ablation.ce_width ())
    | "ablation-pac-width" -> print_endline (Rsti_report.Ablation.pac_brute_force ())
    | "backend" -> print_endline (Rsti_report.Ablation.backend_comparison ())
    | "elide" ->
        print_endline (Rsti_report.Ablation.elision ());
        print_endline (Rsti_report.Security.elide_safety ())
    | "elide-precision" ->
        print_endline (Rsti_report.Ablation.elide_precision ());
        print_endline
          (Rsti_report.Security.elide_safety
             ~elision:Rsti_staticcheck.Elide.With_points_to ())
    | "elide-precision-cs" ->
        print_endline (Rsti_report.Ablation.elide_precision_cs ());
        print_endline
          (Rsti_report.Security.elide_safety
             ~elision:(Rsti_staticcheck.Elide.With_context 2) ())
    | "validate" -> print_endline (Rsti_report.Security.validation ())
    | "attack-surface" ->
        print_endline (Rsti_report.Attack_surface.report ())
    | "incidents" -> print_endline (Rsti_report.Incidents.report ())
    | s ->
        Printf.eprintf "unknown report %S\n" s;
        exit 2
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const action $ Rsti_engine_cli.setup_jobs_term $ which)

let workloads_cmd =
  let doc =
    "Dump the SPEC2006 workload kernels as MiniC source files (one \
     <name>.c per workload, with the analysis population attached) — the \
     corpus the CI lint/analyze legs run over."
  in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let action dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
    else if not (Sys.is_directory dir) then begin
      Printf.eprintf "rstic workloads: not a directory: %s\n" dir;
      exit 2
    end;
    List.iter
      (fun (w : Rsti_workloads.Workload.t) ->
        let path = Filename.concat dir (w.name ^ ".c") in
        let oc = open_out path in
        output_string oc (Rsti_workloads.Workload.analysis_source w);
        close_out oc;
        Printf.printf "%s\n" path)
      Rsti_workloads.Spec2006.all
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const action $ dir_arg)

let gen_cmd =
  let doc = "Generate a random MiniC program (seeded, reproducible)." in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")
  in
  let structs =
    Arg.(value & opt int 3 & info [ "structs" ] ~docv:"N" ~doc:"Struct types.")
  in
  let funcs =
    Arg.(value & opt int 5 & info [ "funcs" ] ~docv:"N" ~doc:"Worker functions.")
  in
  let action seed structs funcs =
    let config =
      {
        Rsti_workloads.Generator.default with
        n_structs = max 1 structs;
        n_funcs = max 1 funcs;
        n_globals = max 2 (structs / 2 + 2);
      }
    in
    print_string
      (Rsti_workloads.Generator.generate ~config ~seed:(Int64.of_int seed) ())
  in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const action $ seed $ structs $ funcs)

let () =
  let doc = "RSTI: runtime scope-type integrity toolchain (ASPLOS'24 reproduction)" in
  let info = Cmd.info "rstic" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; emit_ir_cmd; analyze_cmd; lint_cmd; attacks_cmd;
            report_cmd; gen_cmd; workloads_cmd;
          ]))
